// Package sim executes PIM instruction streams on a chip model, producing
// time, energy, and per-phase breakdowns. It is the reproduction's stand-in
// for the paper's cycle-accurate simulator (NVSim + FloatPIM adaptation):
// digital-PIM timing is deterministic per instruction — every arithmetic
// instruction is a fixed bit-serial NOR sequence, every transfer a routed
// switch path — so accumulating per-instruction costs at instruction
// granularity is equivalent to cycle-accurate simulation for these
// workloads.
//
// The engine has two modes. In timing mode it only accounts cost. In
// functional mode it additionally performs every data movement and
// arithmetic operation on real float32 cell contents, which lets tests
// check a PIM-executed dG time-step against the internal/dg reference
// solver node for node.
package sim

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"wavepim/internal/obs"
	"wavepim/internal/obs/eventlog"
	"wavepim/internal/params"
	"wavepim/internal/pim/chip"
	"wavepim/internal/pim/fault"
	"wavepim/internal/pim/intercon"
	"wavepim/internal/pim/isa"
	"wavepim/internal/pim/nor"
	"wavepim/internal/pim/xbar"
)

// Phase is one scheduled span of work.
type Phase struct {
	Name    string
	Kind    string // "blocks", "transfer", "dram", "host", "compose"
	Start   float64
	Dur     float64
	EnergyJ float64
}

// End returns the phase end time.
func (p Phase) End() float64 { return p.Start + p.Dur }

// RowTransfer is an inter-block data movement at word granularity: Words
// 32-bit words from (SrcBlock, SrcRow, SrcOff) to (DstBlock, DstRow,
// DstOff), routed through the interconnect.
type RowTransfer struct {
	SrcBlock, SrcRow, SrcOff int
	DstBlock, DstRow, DstOff int
	Words                    int
}

// Engine executes work on a chip and accumulates a timeline.
type Engine struct {
	Chip       *chip.Chip
	Functional bool
	// Workers > 1 fans the per-block work of ExecBlocks across that many
	// goroutines — the software mirror of the chip's defining property that
	// blocks execute in parallel. Results, timeline, and energy are
	// bit-identical to the serial path: per-block contributions are merged
	// in ascending block order regardless of completion order. 0 or 1 keeps
	// the serial path.
	Workers int
	// Obs, when non-nil, receives per-phase spans and counters (phase
	// durations and energies, instruction-class counts, per-block
	// energies, worker-pool occupancy). Nil disables all instrumentation;
	// the nil path is the uninstrumented hot path.
	Obs *obs.Sink

	// SlabWords > 0 routes every functional arithmetic instruction
	// (OpAdd/OpSub/OpMul) through the K-word bit-sliced NOR slab
	// substrate instead of host floating point: operands are gathered
	// into SlabWords*64-lane slabs and computed by the gate-level
	// IEEE-754 programs of internal/pim/nor, with gate activity
	// accumulated in NORGateStats. Results are bit-identical to the
	// host-float path (the substrate's fidelity is property-tested
	// against hardware floats); timing and energy charging are
	// unchanged. 0 keeps the host-float fast path. Timing-only engines
	// ignore the setting.
	SlabWords int
	// norUnits pools one gather/compute unit per in-flight instruction,
	// so the slab path stays allocation-free under the worker pool.
	norUnits sync.Pool
	// norEvals/norSets/norResets accumulate gate-level activity from the
	// slab path (atomically: block programs run concurrently).
	norEvals, norSets, norResets int64

	// Log, when non-nil, receives structured events: one per recovery
	// rung firing (with block, rung, and simulated-time cost). Nil is
	// the silent path. Rung events are emitted from the deterministic
	// post-merge section, so their order is stable across worker counts.
	Log *eventlog.Logger

	// Faults, when non-nil, enables the fault-injection recovery ladder
	// in functional mode: after every block phase the engine scrubs
	// (ECC), verify-retries failing programs, and remaps blocks that
	// stay uncorrectable onto SparePool. Nil is the golden path.
	Faults *fault.Injector
	// SparePool lists reserved physical block ids, consumed in order by
	// spare-block remapping.
	SparePool  []int
	sparesUsed int
	// pendingFault queues the ECC/retry/remap phases produced inside a
	// block phase; Sequence/Parallel drain it right after the triggering
	// phase commits, so recovery costs land on the simulated timeline.
	pendingFault []Phase

	Timeline    []Phase
	TotalEnergy float64
	clock       float64

	// ctx, when set via SetContext, makes ExecBlocks cancellable; the
	// first cancellation error is latched in err (see Err).
	ctx context.Context
	err error

	// Instruction statistics.
	InstrCount int64
	TransferCt int64
	DRAMBytes  int64

	// chipTree routes cross-tile transfers: the same topology kind as the
	// tiles, instantiated over the chip's tiles (the chip-level counterpart
	// of the per-tile networks).
	chipTree intercon.Topology

	// Interconnect congestion accounting — the observables of the
	// estimate -> occupy -> backpressure contention loop, aggregated over
	// every scheduled batch of the run. tileSwitchBusy sums per-local-
	// switch busy seconds across all tiles (every tile shares one topology
	// shape); chipSwitchBusy does the same for the chip-level network.
	tileSwitchBusy      []float64
	chipSwitchBusy      []float64
	xferBackpressured   int64
	xferBackpressureSec float64
}

// InterconReport is the run-level congestion summary of the interconnect:
// how many transfers were backpressured behind a busy switch, the total
// wait, and the per-switch busy-second ledgers (index = switch id; tile
// entries sum over all tiles).
type InterconReport struct {
	Topology        string    `json:"topology"`
	Transfers       int64     `json:"transfers"`
	Backpressured   int64     `json:"backpressured"`
	BackpressureSec float64   `json:"backpressure_seconds"`
	TileSwitchBusy  []float64 `json:"tile_switch_busy_seconds"`
	ChipSwitchBusy  []float64 `json:"chip_switch_busy_seconds,omitempty"`
}

// InterconReport snapshots the congestion accounting accumulated so far.
func (e *Engine) InterconReport() InterconReport {
	r := InterconReport{
		Topology:        e.Chip.Config.Interconnect.String(),
		Transfers:       e.TransferCt,
		Backpressured:   e.xferBackpressured,
		BackpressureSec: e.xferBackpressureSec,
	}
	r.TileSwitchBusy = append([]float64(nil), e.tileSwitchBusy...)
	r.ChipSwitchBusy = append([]float64(nil), e.chipSwitchBusy...)
	return r
}

// New creates an engine over a chip. The chip-level (inter-tile) network
// matches the configured tile interconnect kind, instantiated over the
// chip's tiles (e.g. a fanout-4 H-tree over tiles, or a single chip-wide
// bus for the Bus design). The chip validated the topology name, so the
// factory cannot fail here.
func New(ch *chip.Chip, functional bool) *Engine {
	e := &Engine{Chip: ch, Functional: functional}
	if n := ch.Config.NumTiles(); n > 1 {
		t, err := intercon.New(string(ch.Config.Interconnect), n,
			intercon.Config{Fanout: ch.Config.Fanout})
		if err != nil {
			panic(err)
		}
		e.chipTree = t
	}
	return e
}

// Now returns the current clock.
func (e *Engine) Now() float64 { return e.clock }

// SetContext installs (or, with nil, removes) the context consulted by
// ExecBlocks and the worker pool. A run driver sets it once for the whole
// run so the per-phase call sites stay signature-compatible; ExecBlocksCtx
// is the explicit-context form.
func (e *Engine) SetContext(ctx context.Context) { e.ctx = ctx }

// Err returns the first cancellation error an ExecBlocks call observed
// since the last Reset/ClearErr, or nil.
func (e *Engine) Err() error { return e.err }

// ClearErr resets the latched cancellation error.
func (e *Engine) ClearErr() { e.err = nil }

// trackOf maps a phase kind to a stable trace lane, so Chrome renders
// compute, transfer, DRAM, and host activity as separate rows.
func trackOf(kind string) int {
	switch kind {
	case "blocks":
		return 0
	case "transfer":
		return 1
	case "dram":
		return 2
	case "host":
		return 3
	case "fault":
		return 4
	}
	return 5
}

// commit appends a phase at the given start and advances the clock to at
// least its end.
func (e *Engine) commit(p Phase, start float64) Phase {
	p.Start = start
	if p.End() > e.clock {
		e.clock = p.End()
	}
	e.TotalEnergy += p.EnergyJ
	e.Timeline = append(e.Timeline, p)
	if e.Obs != nil {
		e.Obs.Span(p.Name, p.Kind, p.Start, p.Dur, trackOf(p.Kind))
		e.Obs.Counter("sim.phase.count." + p.Kind).Inc()
		e.Obs.Histogram("sim.phase.seconds." + p.Kind).Observe(p.Dur)
		e.Obs.Histogram("sim.phase.energy_joules." + p.Kind).Observe(p.EnergyJ)
		// Labeled twins of the per-kind series: one histogram family per
		// phase name. Both label values are drawn from small enumerated
		// sets (phase names are compiler-fixed kernel stages), so the
		// exposition cardinality stays bounded (DESIGN.md §10).
		e.Obs.HistogramVec("sim.phase.span_seconds", "kind", "phase").
			With(p.Kind, p.Name).Observe(p.Dur)
		e.Obs.CounterVec("sim.phase.spans", "kind", "phase").
			With(p.Kind, p.Name).Inc()
		e.Obs.Gauge("sim.clock_seconds").Set(e.clock)
		e.Obs.Gauge("sim.total_energy_joules").Set(e.TotalEnergy)
	}
	return p
}

// Sequence lays a phase at the current clock.
func (e *Engine) Sequence(p Phase) Phase {
	out := e.commit(p, e.clock)
	e.drainFaultPhases()
	return out
}

// Parallel lays several phases at the same start time (the pipelining of
// Section 6.3: flux data fetch, host preprocessing and Volume compute
// overlap); the clock advances by the longest.
func (e *Engine) Parallel(ps ...Phase) []Phase {
	start := e.clock
	out := make([]Phase, 0, len(ps))
	for _, p := range ps {
		out = append(out, e.commit(p, start))
	}
	e.drainFaultPhases()
	return out
}

// drainFaultPhases commits the recovery phases queued by the last block
// phase, sequentially after it (the ladder runs after the compute).
func (e *Engine) drainFaultPhases() {
	for len(e.pendingFault) > 0 {
		pf := e.pendingFault
		e.pendingFault = nil
		for _, p := range pf {
			e.commit(p, e.clock)
		}
	}
}

// ---------------------------------------------------------------------------
// Cost model (single source of truth, verified against xbar's accounting)
// ---------------------------------------------------------------------------

// InstrCost returns the latency and energy of one instruction executed in a
// block. rowCount-dependent energy uses the instruction's own row range.
func InstrCost(in isa.Instr) (sec, joules float64) {
	switch in.Op {
	case isa.OpNop:
		return 0, 0
	case isa.OpRead:
		return params.BlockRowReadLatency, params.RowBufferReadEnergyJ
	case isa.OpWrite:
		return params.BlockRowWriteLatency, params.RowBufferWriteEnergyJ
	case isa.OpBroadcast:
		return params.BlockRowReadLatency + float64(in.RowCount)*params.BlockRowWriteLatency,
			params.RowBufferReadEnergyJ + float64(in.RowCount)*params.RowBufferWriteEnergyJ
	case isa.OpAdd, isa.OpSub:
		steps := float64(params.NORStepsFPAdd32)
		return steps * params.TNORSeconds, steps * params.EnergyPerNORStep * float64(in.RowCount)
	case isa.OpMul:
		steps := float64(params.NORStepsFPMul32)
		return steps * params.TNORSeconds, steps * params.EnergyPerNORStep * float64(in.RowCount)
	case isa.OpGroupBcast, isa.OpPattern:
		return params.GroupBcastLatencySec, params.GroupBcastEnergyJ
	case isa.OpLUT:
		// Algorithm 1: two reads and one write, plus the one-word transit
		// from the LUT block (charged by the caller via transfer path).
		sec = 2*params.BlockRowReadLatency + params.BlockRowWriteLatency
		joules = 2*params.RowBufferReadEnergyJ + params.RowBufferWriteEnergyJ
		return sec, joules
	case isa.OpMemcpy:
		// Standalone memcpy latency is routing-dependent; ExecTransfers
		// prices full routes. A bare memcpy instruction accounts only the
		// endpoint buffer operations.
		return params.BlockRowReadLatency + params.BlockRowWriteLatency,
			params.RowBufferReadEnergyJ + params.RowBufferWriteEnergyJ
	}
	panic(fmt.Sprintf("sim: unknown opcode %v", in.Op))
}

// ---------------------------------------------------------------------------
// Work executors (they price work; Sequence/Parallel place it in time)
// ---------------------------------------------------------------------------

// ExecBlocks executes one program per block, all blocks in parallel (the
// chip's defining property). Returns an unplaced Phase whose duration is
// the longest per-block program and whose energy is the sum.
//
// With Workers > 1 the per-block programs run on a goroutine pool; the
// commit stays deterministic because per-block durations, energies, and
// instruction counts are accumulated privately and merged in ascending
// block order (the serial path uses the same sorted order, so serial and
// parallel runs produce identical floating-point sums).
//
// Cancellation: when a context was installed with SetContext, ExecBlocks
// aborts between per-block programs once the context is done, latches the
// error (see Err), and returns a zero Phase.
func (e *Engine) ExecBlocks(name string, progs map[int][]isa.Instr) Phase {
	ctx := e.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	p, err := e.ExecBlocksCtx(ctx, name, progs)
	if err != nil && e.err == nil {
		e.err = err
	}
	return p
}

// ExecBlocksCtx is ExecBlocks with an explicit context: the worker pool
// stops claiming blocks as soon as ctx is done and the call returns
// ctx.Err() instead of finishing the batch (no phase is produced and
// nothing is charged to the timeline). In functional mode a cancelled
// batch leaves the chip partially updated, as a real abort would.
func (e *Engine) ExecBlocksCtx(ctx context.Context, name string, progs map[int][]isa.Instr) (Phase, error) {
	ids := make([]int, 0, len(progs))
	for id := range progs {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	type blockCost struct {
		dur, energy float64
		instrs      int64

		// Recovery-ladder accounting (only written when the ladder is
		// active): scrub and retry costs are kept out of dur/energy so
		// the block phase stays nominal and the overhead lands on
		// dedicated sim.fault.* phases.
		scrubSec, scrubJ                            float64
		retrySec, retryJ                            float64
		detected, corrected, uncorrectable, retries int64
		failed                                      bool
	}
	costs := make([]blockCost, len(ids))
	instrumented := e.Obs != nil
	var opCounts [][isa.NumOpcodes]int64
	if instrumented {
		opCounts = make([][isa.NumOpcodes]int64, len(ids))
	}
	// The ladder runs when the engine executes real data under an
	// injector whose recovery policy enables ECC scrubbing.
	ladder := e.Functional && e.Faults != nil && e.Faults.Recovery().ECC
	maxRetries := 0
	if ladder {
		maxRetries = e.Faults.Recovery().MaxRetries
	}
	runBlock := func(i int) {
		blockID := ids[i]
		c := &costs[i]
		prog := progs[blockID]
		exec := func(durp, enp *float64) {
			for _, in := range prog {
				sec, j := InstrCost(in)
				*durp += sec
				*enp += j
				c.instrs++
				if instrumented {
					opCounts[i][in.Op]++
				}
				if in.Op == isa.OpLUT {
					// Transit of the fetched word from the LUT block.
					tsec, tj := e.transferCost(in.LUTBlock, blockID, 1)
					*durp += tsec
					*enp += tj
				}
				if e.Functional {
					e.execInstr(blockID, in)
				}
			}
		}
		if !ladder {
			exec(&c.dur, &c.energy)
			return
		}
		// Recovery ladder: scrub after the program; on uncorrectable
		// errors, rewind and re-execute (verify-retry) up to the budget.
		// Retry is only sound for self-contained programs — a program
		// touching foreign blocks cannot be rewound locally.
		blk := e.Chip.Block(blockID)
		retriable := progRetriable(blockID, prog)
		var cellSnap []uint32
		var pendSnap map[uint32]uint32
		if retriable && blk.Faults != nil {
			cellSnap = blk.Snapshot()
			pendSnap = blk.Faults.SnapshotPending()
		} else {
			retriable = false
		}
		exec(&c.dur, &c.energy)
		for attempt := 0; ; attempt++ {
			res := blk.Scrub()
			sec, j := fault.ScrubCost(int(res.Corrected))
			if attempt == 0 {
				c.scrubSec += sec
				c.scrubJ += j
			} else {
				c.retrySec += sec
				c.retryJ += j
			}
			c.detected += res.Detected
			c.corrected += res.Corrected
			if res.Uncorrectable == 0 {
				return
			}
			if !retriable || attempt >= maxRetries {
				c.uncorrectable += res.Uncorrectable
				c.failed = true
				return
			}
			c.retries++
			blk.Faults.AddRetry()
			bsec, bj := fault.BackoffCost(attempt + 1)
			c.retrySec += bsec
			c.retryJ += bj
			blk.Restore(cellSnap)
			blk.Faults.RestorePending(pendSnap)
			exec(&c.retrySec, &c.retryJ)
		}
	}

	done := ctx.Done()
	workers := e.execWorkers(len(ids))
	parallel := workers > 1 && blocksIndependent(progs)
	if parallel {
		var next int64 = -1
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					i := int(atomic.AddInt64(&next, 1))
					if i >= len(ids) {
						return
					}
					runBlock(i)
				}
			}()
		}
		wg.Wait()
	} else {
		for i := range ids {
			if done != nil && ctx.Err() != nil {
				break
			}
			runBlock(i)
		}
	}
	if err := ctx.Err(); err != nil {
		return Phase{}, err
	}

	var maxDur, energy float64
	for i := range costs {
		if costs[i].dur > maxDur {
			maxDur = costs[i].dur
		}
		energy += costs[i].energy
		e.InstrCount += costs[i].instrs
	}
	if ladder {
		// Merge the ladder accounting in ascending block order (same
		// determinism discipline as the main cost merge) and queue the
		// recovery phases for the commit that follows this one.
		var scrubMax, scrubJ, retryMax, retryJ float64
		var detected, corrected, uncorrectable, retries int64
		var failed []int
		for i := range costs {
			c := &costs[i]
			if c.scrubSec > scrubMax {
				scrubMax = c.scrubSec
			}
			scrubJ += c.scrubJ
			if c.retrySec > retryMax {
				retryMax = c.retrySec
			}
			retryJ += c.retryJ
			detected += c.detected
			corrected += c.corrected
			uncorrectable += c.uncorrectable
			retries += c.retries
			if c.failed {
				failed = append(failed, ids[i])
			}
		}
		if scrubMax > 0 {
			e.pendingFault = append(e.pendingFault,
				Phase{Name: "sim.fault.ecc", Kind: "fault", Dur: scrubMax, EnergyJ: scrubJ})
		}
		if retryMax > 0 {
			e.pendingFault = append(e.pendingFault,
				Phase{Name: "sim.fault.retry", Kind: "fault", Dur: retryMax, EnergyJ: retryJ})
		}
		if instrumented {
			for _, c := range []struct {
				name string
				n    int64
			}{
				{"sim.fault.detected", detected},
				{"sim.fault.corrected", corrected},
				{"sim.fault.uncorrectable", uncorrectable},
				{"sim.fault.retries", retries},
			} {
				if c.n > 0 {
					e.Obs.Counter(c.name).Add(c.n)
				}
			}
		}
		// Per-block rung telemetry, emitted in ascending block order so
		// event streams and labeled counters are deterministic across
		// worker counts. MTTR = the simulated time one repair took.
		for i := range costs {
			c := &costs[i]
			if c.detected > 0 {
				e.noteRung("ecc", ids[i], c.scrubSec,
					eventlog.Int64("detected", c.detected),
					eventlog.Int64("corrected", c.corrected))
			}
			if c.retries > 0 {
				e.noteRung("retry", ids[i], c.retrySec,
					eventlog.Int64("retries", c.retries))
			}
		}
		if len(failed) > 0 {
			e.remapFailed(failed)
		}
	}
	if instrumented {
		var perOp [isa.NumOpcodes]int64
		blockEnergy := e.Obs.Histogram("sim.block.energy_joules")
		for i := range costs {
			blockEnergy.Observe(costs[i].energy)
			for op, n := range opCounts[i] {
				perOp[op] += n
			}
		}
		for op, n := range perOp {
			if n > 0 {
				e.Obs.Counter("sim.instr." + isa.Opcode(op).String()).Add(n)
			}
		}
		e.Obs.Counter("sim.pool.blocks").Add(int64(len(ids)))
		if parallel {
			e.Obs.Counter("sim.pool.parallel_execs").Inc()
			e.Obs.Gauge("sim.pool.workers").Set(float64(workers))
		} else {
			e.Obs.Counter("sim.pool.serial_execs").Inc()
		}
	}
	return Phase{Name: name, Kind: "blocks", Dur: maxDur, EnergyJ: energy}, nil
}

// execWorkers bounds the pool size by the work available.
func (e *Engine) execWorkers(nBlocks int) int {
	w := e.Workers
	if w > nBlocks {
		w = nBlocks
	}
	return w
}

// blocksIndependent reports whether every program touches only its own
// block's mutable state, so the programs can run concurrently. Reads from
// foreign LUT blocks are allowed as long as no program in the phase runs on
// (and could mutate) those blocks; memcpy and foreign-row read/write force
// the serial path.
func blocksIndependent(progs map[int][]isa.Instr) bool {
	for blockID, prog := range progs {
		for _, in := range prog {
			switch in.Op {
			case isa.OpMemcpy:
				return false
			case isa.OpRead, isa.OpWrite:
				if in.Block != blockID {
					return false
				}
			case isa.OpLUT:
				if _, ok := progs[in.LUTBlock]; ok {
					return false
				}
			}
		}
	}
	return true
}

// progRetriable reports whether a block program can be verify-retried: it
// must touch no foreign mutable state (LUT reads are fine — LUT blocks are
// static within a phase), so a cell Snapshot of this one block captures
// everything the replay needs.
func progRetriable(blockID int, prog []isa.Instr) bool {
	for _, in := range prog {
		switch in.Op {
		case isa.OpMemcpy:
			return false
		case isa.OpRead, isa.OpWrite:
			if in.Block != blockID {
				return false
			}
		}
	}
	return true
}

// noteRung records one recovery-rung firing on one block: a structured
// event (block, rung, simulated-time cost) plus the rung-labeled counter
// and MTTR histogram. rung is one of "ecc", "retry", "remap" (the engine
// rungs); the Session adds "rollback".
func (e *Engine) noteRung(rung string, block int, costSec float64, extra ...eventlog.Field) {
	if e.Obs != nil {
		e.Obs.CounterVec("sim.fault.rung_events", "rung").With(rung).Inc()
		e.Obs.HistogramVec("sim.fault.mttr_seconds", "rung").With(rung).Observe(costSec)
		e.Obs.CounterVec("sim.fault.block_events", "block").With(BlockLabel(block)).Inc()
	}
	if e.Log != nil {
		fields := append([]eventlog.Field{
			eventlog.Str("rung", rung),
			eventlog.Int("block", block),
			eventlog.F64("cost_seconds", costSec),
		}, extra...)
		e.Log.Info("fault.rung", fields...)
	}
}

// blockLabelCap bounds the cardinality of block-indexed metric labels:
// blocks past the cap share one overflow label (events still carry the
// exact id). See DESIGN.md §10 for the cardinality rules.
const blockLabelCap = 32

// BlockLabel renders a block id as a cardinality-capped label value.
func BlockLabel(id int) string {
	if id < blockLabelCap {
		return strconv.Itoa(id)
	}
	return "overflow"
}

// remapFailed migrates blocks that stayed uncorrectable after the retry
// budget onto spare blocks: the spare receives an ECC-corrected copy of
// every word, the chip's logical->physical table redirects the id, and the
// migration cost (full-array read + routed transfer + write) is queued as
// a sim.fault.remap phase. Spare exhaustion latches fault.ErrNoSpares.
func (e *Engine) remapFailed(failed []int) {
	for _, logical := range failed {
		if e.sparesUsed >= len(e.SparePool) {
			if e.err == nil {
				e.err = fmt.Errorf("sim: block %d uncorrectable after retries: %w", logical, fault.ErrNoSpares)
			}
			if e.Log != nil {
				e.Log.Error("fault.no_spares",
					eventlog.Int("block", logical),
					eventlog.Int("spares_used", e.sparesUsed))
			}
			return
		}
		spare := e.SparePool[e.sparesUsed]
		e.sparesUsed++
		oldPhys := e.Chip.Physical(logical)
		old := e.Chip.Block(logical)
		sb := e.Chip.Block(spare)
		for r := 0; r < xbar.Rows; r++ {
			for o := 0; o < xbar.WordsPerRow; o++ {
				sb.SetWord(r, o, old.CorrectedWord(r, o))
			}
		}
		if old.Faults != nil {
			old.Faults.ClearPending()
		}
		tsec, tj := e.transferCost(oldPhys, spare, xbar.Rows*xbar.WordsPerRow)
		sec := float64(xbar.Rows)*(params.BlockRowReadLatency+params.BlockRowWriteLatency) + tsec
		joules := float64(xbar.Rows)*(params.RowBufferReadEnergyJ+params.RowBufferWriteEnergyJ) + tj
		e.Chip.SetRemap(logical, spare)
		e.Faults.NoteRemap(logical)
		e.pendingFault = append(e.pendingFault,
			Phase{Name: "sim.fault.remap", Kind: "fault", Dur: sec, EnergyJ: joules})
		if e.Obs != nil {
			e.Obs.Counter("sim.fault.remaps").Inc()
		}
		e.noteRung("remap", logical, sec, eventlog.Int("spare", spare))
	}
}

// FaultReport assembles the per-run fault summary: the injector's
// aggregated counters plus the engine-owned spare-pool accounting. Zero
// value without an injector.
func (e *Engine) FaultReport() fault.Report {
	if e.Faults == nil {
		return fault.Report{}
	}
	r := e.Faults.Report()
	r.SparesUsed = e.sparesUsed
	r.SparesLeft = len(e.SparePool) - e.sparesUsed
	return r
}

// ExecEncoded executes assembled 64-bit instruction streams — the actual
// host-to-controller interface of the ISA-based design. The central
// controller decodes each word before dispatching it to the block's
// decoder, exactly as Section 4.1 describes ("Instructions are sent from
// the host, and are pre-processed by the decoder on the PIM chip").
func (e *Engine) ExecEncoded(name string, streams map[int][]uint64) (Phase, error) {
	progs := make(map[int][]isa.Instr, len(streams))
	for blockID, words := range streams {
		prog := make([]isa.Instr, len(words))
		for i, w := range words {
			in, err := isa.Decode(w)
			if err != nil {
				return Phase{}, fmt.Errorf("sim: block %d word %d: %w", blockID, i, err)
			}
			prog[i] = in
		}
		progs[blockID] = prog
	}
	return e.ExecBlocks(name, progs), nil
}

// ExecBlocksN prices one program template executed concurrently by n
// identical blocks — the timing-mode fast path for large models, where the
// per-block programs of a kernel phase are the same template replicated
// across every element (duration is one program; energy scales with n). It
// must not be used in functional mode.
func (e *Engine) ExecBlocksN(name string, prog []isa.Instr, n int, avgLUTHops int) Phase {
	if e.Functional {
		panic("sim: ExecBlocksN is timing-only; use ExecBlocks in functional mode")
	}
	var dur, energy float64
	for _, in := range prog {
		sec, j := InstrCost(in)
		dur += sec
		energy += j
		if in.Op == isa.OpLUT && avgLUTHops > 0 {
			dur += float64(avgLUTHops) * params.SwitchHopLatencySec
			energy += float64(avgLUTHops) * params.SwitchHopEnergyJ
		}
	}
	e.InstrCount += int64(len(prog) * n)
	if e.Obs != nil {
		var perOp [isa.NumOpcodes]int64
		for _, in := range prog {
			perOp[in.Op]++
		}
		for op, c := range perOp {
			if c > 0 {
				e.Obs.Counter("sim.instr." + isa.Opcode(op).String()).Add(c * int64(n))
			}
		}
		e.Obs.Counter("sim.pool.blocks").Add(int64(n))
	}
	return Phase{Name: name, Kind: "blocks", Dur: dur, EnergyJ: energy * float64(n)}
}

// execInstr performs one instruction's data effects.
func (e *Engine) execInstr(blockID int, in isa.Instr) {
	b := e.Chip.Block(blockID)
	switch in.Op {
	case isa.OpNop:
	case isa.OpRead:
		e.Chip.Block(in.Block).ReadRow(in.Row)
	case isa.OpWrite:
		e.Chip.Block(in.Block).WriteRow(in.Row)
	case isa.OpBroadcast:
		b.Broadcast(in.Row, in.RowStart, in.RowCount, in.SrcOff, in.DstOff, in.WordCount)
	case isa.OpAdd:
		e.arith(b, xbar.OpAdd, in)
	case isa.OpMul:
		e.arith(b, xbar.OpMul, in)
	case isa.OpSub:
		e.arith(b, xbar.OpSub, in)
	case isa.OpGroupBcast:
		b.GroupBcast(in.RowStart, in.RowCount, in.SrcOff, in.DstOff, in.Stride, in.GroupSize, in.GroupIdx)
	case isa.OpPattern:
		b.Pattern(in.Row, in.RowStart, in.RowCount, in.SrcOff, in.DstOff, in.Stride, in.GroupSize)
	case isa.OpLUT:
		// Algorithm 1 on real data.
		lut := e.Chip.Block(in.LUTBlock)
		idx := b.GetWord(in.Row, in.SrcOff)
		content := lut.GetWord(int(idx)/params.WordsPerRow, int(idx)%params.WordsPerRow)
		b.SetWord(in.Row, in.DstOff, content)
	case isa.OpMemcpy:
		src := e.Chip.Block(in.Block)
		src.ReadRow(in.Row)
		dst := e.Chip.Block(in.DstBlock)
		dst.LoadBuffer(src.Buffer())
		dst.WriteRow(in.DstRow)
	}
}

// arith dispatches one row-parallel arithmetic instruction: the host-float
// fast path by default, or the gate-level NOR slab substrate when
// SlabWords is set. Pool units are per-instruction, so the worker pool
// never shares a circuit.
func (e *Engine) arith(b *xbar.Block, op xbar.ArithOp, in isa.Instr) {
	if e.SlabWords <= 0 {
		b.ArithSel(op, in.RowStart, in.RowCount, in.DstOff, in.SrcOff, in.Src2Off)
		return
	}
	u, _ := e.norUnits.Get().(*xbar.NORUnit)
	if u == nil || u.SlabWords() != e.SlabWords {
		u = xbar.NewNORUnit(e.SlabWords)
	}
	u.C.Stats = nor.Stats{}
	b.ArithSelNOR(u, op, in.RowStart, in.RowCount, in.DstOff, in.SrcOff, in.Src2Off)
	st := u.C.Stats
	atomic.AddInt64(&e.norEvals, st.NOREvals)
	atomic.AddInt64(&e.norSets, st.Sets)
	atomic.AddInt64(&e.norResets, st.Resets)
	e.norUnits.Put(u)
}

// NORGateStats returns the gate-level activity accumulated by the slab
// substrate since the last Reset (all zero on the host-float path).
func (e *Engine) NORGateStats() nor.Stats {
	return nor.Stats{
		NOREvals: atomic.LoadInt64(&e.norEvals),
		Sets:     atomic.LoadInt64(&e.norSets),
		Resets:   atomic.LoadInt64(&e.norResets),
	}
}

// transferCost prices a words-long movement between two blocks, including
// the cross-tile path when they live in different tiles.
func (e *Engine) transferCost(src, dst int, words int) (sec, joules float64) {
	if src == dst {
		return 0, 0
	}
	hops := e.routeHops(src, dst)
	payloads := (words + params.PayloadWords - 1) / params.PayloadWords
	sec = float64(payloads+hops-1) * params.SwitchHopLatencySec
	joules = float64(words*hops) * params.SwitchHopEnergyJ
	return sec, joules
}

// routeHops counts the switches between two blocks: the tile topology path
// when co-resident; otherwise both tiles' full depth plus the chip-level
// router hop.
func (e *Engine) routeHops(src, dst int) int {
	st, dt := e.Chip.TileOf(src), e.Chip.TileOf(dst)
	if st == dt {
		return len(e.Chip.Topology(st).Path(e.Chip.LocalID(src), e.Chip.LocalID(dst)))
	}
	depth := e.Chip.Topology(st).EgressHops()
	return 2*depth + 1 // up the source tile, across the chip router, down the destination tile
}

// ExecTransfers schedules a batch of inter-block transfers. Intra-tile
// batches use the tile's contention-aware topology schedule and different
// tiles overlap; cross-tile transfers are scheduled on the chip-level
// H-tree over tiles (disjoint tile subtrees overlap, shared routes
// contend). Functional mode also moves the words.
func (e *Engine) ExecTransfers(name string, trs []RowTransfer) Phase {
	perTile := make(map[int][]intercon.Transfer)
	var cross []intercon.Transfer
	var crossEndpoints float64
	var obsWords int64
	for _, tr := range trs {
		e.TransferCt++
		obsWords += int64(tr.Words)
		st, dt := e.Chip.TileOf(tr.SrcBlock), e.Chip.TileOf(tr.DstBlock)
		if st == dt {
			perTile[st] = append(perTile[st], intercon.Transfer{
				Src: e.Chip.LocalID(tr.SrcBlock), Dst: e.Chip.LocalID(tr.DstBlock), Words: tr.Words})
		} else {
			cross = append(cross, intercon.Transfer{Src: st, Dst: dt, Words: tr.Words})
			// The legs inside the two tiles (leaf to tile gateway and back).
			payloads := (tr.Words + params.PayloadWords - 1) / params.PayloadWords
			crossEndpoints += float64(2 * e.Chip.Topology(st).EgressHops() * payloads)
		}
		if e.Functional {
			e.moveWords(tr)
		}
	}
	// Visit tiles in sorted order: the float energy accumulation must not
	// depend on map iteration order, or seeded runs stop being
	// byte-reproducible.
	tiles := make([]int, 0, len(perTile))
	for tile := range perTile {
		tiles = append(tiles, tile)
	}
	sort.Ints(tiles)
	var dur, energy float64
	for _, tile := range tiles {
		topo := e.Chip.Topology(tile)
		if e.tileSwitchBusy == nil {
			e.tileSwitchBusy = make([]float64, topo.SwitchCount())
		}
		s := intercon.ScheduleBatchBusy(topo, perTile[tile], e.tileSwitchBusy)
		e.xferBackpressured += int64(s.Backpressured)
		e.xferBackpressureSec += s.BackpressureSec
		if s.Makespan > dur {
			dur = s.Makespan
		}
		energy += s.EnergyJ
	}
	if len(cross) > 0 && e.chipTree != nil {
		if e.chipSwitchBusy == nil {
			e.chipSwitchBusy = make([]float64, e.chipTree.SwitchCount())
		}
		s := intercon.ScheduleBatchBusy(e.chipTree, cross, e.chipSwitchBusy)
		e.xferBackpressured += int64(s.Backpressured)
		e.xferBackpressureSec += s.BackpressureSec
		// Tile-internal legs of cross-tile routes add energy and latency.
		legEnergy := crossEndpoints * params.PayloadWords * params.SwitchHopEnergyJ
		crossDur := s.Makespan + crossEndpoints/float64(len(cross))*params.SwitchHopLatencySec
		energy += s.EnergyJ + legEnergy
		if crossDur > dur {
			dur = crossDur
		}
	}
	// Endpoint row buffer operations (read at source, write at target) are
	// part of every transfer (Figure 3's I0 and I4).
	if len(trs) > 0 {
		dur += params.BlockRowReadLatency + params.BlockRowWriteLatency
		energy += float64(len(trs)) * (params.RowBufferReadEnergyJ + params.RowBufferWriteEnergyJ)
	}
	if e.Obs != nil {
		e.Obs.Counter("sim.transfer.count").Add(int64(len(trs)))
		e.Obs.Counter("sim.transfer.words").Add(obsWords)
	}
	return Phase{Name: name, Kind: "transfer", Dur: dur, EnergyJ: energy}
}

// moveWords performs the functional data movement of one transfer.
func (e *Engine) moveWords(tr RowTransfer) {
	src := e.Chip.Block(tr.SrcBlock)
	dst := e.Chip.Block(tr.DstBlock)
	for w := 0; w < tr.Words; w++ {
		dst.SetWord(tr.DstRow, tr.DstOff+w, src.GetWord(tr.SrcRow, tr.SrcOff+w))
	}
}

// ExecDRAM prices an off-chip HBM2 transaction (batching's store/load
// steps, Figure 6). Energy charges the DRAM's power for the duration.
func (e *Engine) ExecDRAM(name string, bytes int64) Phase {
	e.DRAMBytes += bytes
	dur := float64(bytes) / params.OffChipBandwidthBps
	return Phase{Name: name, Kind: "dram", Dur: dur, EnergyJ: params.OffChipDRAMPowerW * dur}
}

// ExecHost prices host CPU preprocessing: the sqrt and inverse units
// offloaded per Section 4.3, spread across the host's cores.
func (e *Engine) ExecHost(name string, sqrts, inverses int) Phase {
	h := params.ARMCortexA72
	work := float64(sqrts)*h.SqrtLatencySec + float64(inverses)*h.InverseLatencySec
	dur := work / float64(h.Cores)
	return Phase{Name: name, Kind: "host", Dur: dur, EnergyJ: h.PowerW * dur}
}

// StaticEnergy returns the chip's static (leakage + host idle + DRAM
// standby) energy over the current makespan; callers add it to TotalEnergy
// for whole-run energy accounting.
func (e *Engine) StaticEnergy() float64 {
	return chip.SystemPowerW(e.Chip.Config) * e.clock
}

// TotalTime returns the current makespan.
func (e *Engine) TotalTime() float64 { return e.clock }

// PhaseTime sums the durations of timeline phases whose name contains the
// given substring (for breakdown reporting).
func (e *Engine) PhaseTime(kind string) float64 {
	var t float64
	for _, p := range e.Timeline {
		if p.Kind == kind {
			t += p.Dur
		}
	}
	return t
}

// Reset clears the timeline and counters but keeps the chip (and its
// data). Remaps and spare-pool consumption survive a Reset — they are chip
// state, not run state.
func (e *Engine) Reset() {
	e.Timeline = nil
	e.TotalEnergy = 0
	e.clock = 0
	e.InstrCount = 0
	e.TransferCt = 0
	e.DRAMBytes = 0
	e.err = nil
	e.pendingFault = nil
	e.tileSwitchBusy = nil
	e.chipSwitchBusy = nil
	e.xferBackpressured = 0
	e.xferBackpressureSec = 0
	atomic.StoreInt64(&e.norEvals, 0)
	atomic.StoreInt64(&e.norSets, 0)
	atomic.StoreInt64(&e.norResets, 0)
}

// PublishTotals writes the engine's run-level aggregates into the attached
// sink's registry (no-op without a sink). Run drivers call it once at the
// end of a run.
func (e *Engine) PublishTotals() {
	if e.Obs == nil {
		return
	}
	e.Obs.Gauge("sim.total_seconds").Set(e.TotalTime())
	e.Obs.Gauge("sim.total_energy_joules").Set(e.TotalEnergy)
	e.Obs.Gauge("sim.static_energy_joules").Set(e.StaticEnergy())
	e.Obs.Gauge("sim.instr_count").Set(float64(e.InstrCount))
	e.Obs.Gauge("sim.transfer_count").Set(float64(e.TransferCt))
	e.Obs.Gauge("sim.dram_bytes").Set(float64(e.DRAMBytes))
	e.Obs.Gauge("sim.workers").Set(float64(e.Workers))
	e.Obs.Gauge("sim.intercon.backpressured").Set(float64(e.xferBackpressured))
	e.Obs.Gauge("sim.intercon.backpressure_seconds").Set(e.xferBackpressureSec)
	if e.SlabWords > 0 {
		st := e.NORGateStats()
		e.Obs.Gauge("sim.nor.slab_words").Set(float64(e.SlabWords))
		e.Obs.Gauge("sim.nor.gate_evals").Set(float64(st.NOREvals))
		e.Obs.Gauge("sim.nor.gate_sets").Set(float64(st.Sets))
		e.Obs.Gauge("sim.nor.gate_resets").Set(float64(st.Resets))
	}
	if e.Faults != nil {
		r := e.FaultReport()
		e.Obs.Gauge("sim.fault.flips").Set(float64(r.Counts.Flips))
		e.Obs.Gauge("sim.fault.stuck_writes").Set(float64(r.Counts.StuckWrites))
		e.Obs.Gauge("sim.fault.wearouts").Set(float64(r.Counts.Wearouts))
		e.Obs.Gauge("sim.fault.spares_used").Set(float64(r.SparesUsed))
		e.Obs.Gauge("sim.fault.rollbacks").Set(float64(r.Rollbacks))
	}
}

// TimelineDigest is an FNV-1a hash of the committed timeline (names,
// kinds, and exact float bit patterns of start/duration/energy). Two runs
// are timeline-identical iff their digests match — the reproducibility
// check of the fault determinism gate.
func (e *Engine) TimelineDigest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mixByte := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	mixU64 := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			mixByte(byte(v >> s))
		}
	}
	for _, p := range e.Timeline {
		for _, s := range []string{p.Name, p.Kind} {
			for i := 0; i < len(s); i++ {
				mixByte(s[i])
			}
			mixByte(0)
		}
		mixU64(math.Float64bits(p.Start))
		mixU64(math.Float64bits(p.Dur))
		mixU64(math.Float64bits(p.EnergyJ))
	}
	return h
}

// CheckClose is a test helper: true when a and b agree within rel.
func CheckClose(a, b, rel float64) bool {
	if a == b {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= rel*den
}
