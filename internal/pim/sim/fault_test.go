package sim

import (
	"bytes"
	"errors"
	"testing"

	"wavepim/internal/pim/chip"
	"wavepim/internal/pim/fault"
	"wavepim/internal/pim/isa"
	"wavepim/internal/pim/xbar"
)

// faultedEngine builds a functional engine with an injector attached to
// every block the chip materializes, plus a spare pool.
func faultedEngine(t *testing.T, cfg fault.Config, rec fault.Recovery, spares []int, workers int) *Engine {
	t.Helper()
	ch, err := chip.New(chip.Config512MB())
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(cfg, rec)
	ch.SetBlockHook(func(b *xbar.Block) { b.Faults = inj.ForBlock(b.ID) })
	e := New(ch, true)
	e.Faults = inj
	e.SparePool = spares
	e.Workers = workers
	return e
}

// loadAndAdd seeds rows of two operand columns on the given blocks and
// returns a self-contained (retriable, parallel-safe) add program per block.
func loadAndAdd(e *Engine, blocks, rows int) map[int][]isa.Instr {
	progs := make(map[int][]isa.Instr, blocks)
	for b := 0; b < blocks; b++ {
		blk := e.Chip.Block(b)
		for r := 0; r < rows; r++ {
			blk.SetFloat(r, 0, float32(r)+0.25)
			blk.SetFloat(r, 1, float32(b)+0.5)
		}
		progs[b] = []isa.Instr{{Op: isa.OpAdd, RowStart: 0, RowCount: rows, DstOff: 2, SrcOff: 0, Src2Off: 1}}
	}
	return progs
}

// TestLadderScrubsTransients: transient flips during a block phase are
// detected by the post-phase scrub, corrections land, and the recovery cost
// appears as a dedicated sim.fault.ecc phase after the block phase.
func TestLadderScrubsTransients(t *testing.T) {
	e := faultedEngine(t, fault.Config{Seed: 3, FlipProb: 0.03}, fault.DefaultRecovery(), []int{100, 101, 102, 103}, 1)
	progs := loadAndAdd(e, 4, 64)
	e.Sequence(e.ExecBlocks("add", progs))
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	r := e.FaultReport()
	if r.Counts.Flips == 0 || r.Counts.Detected == 0 || r.Counts.Corrected == 0 {
		t.Fatalf("ladder did not engage: %s", r)
	}
	var sawBlocks, sawECC bool
	for _, p := range e.Timeline {
		switch {
		case p.Kind == "blocks":
			sawBlocks = true
		case p.Name == "sim.fault.ecc":
			sawECC = true
			if !sawBlocks {
				t.Fatal("ECC phase committed before the block phase it follows")
			}
			if p.Dur <= 0 || p.EnergyJ <= 0 {
				t.Fatalf("ECC phase carries no cost: %+v", p)
			}
		}
	}
	if !sawECC {
		t.Fatal("no sim.fault.ecc phase on the timeline")
	}
}

// TestLadderSerialParallelIdentical: the same seeded scenario must produce
// bit-identical timelines and fault reports whether blocks run on one
// worker or eight — fault decisions are hashes, not schedule artifacts.
func TestLadderSerialParallelIdentical(t *testing.T) {
	run := func(workers int) (uint64, []byte) {
		e := faultedEngine(t, fault.Config{Seed: 11, FlipProb: 0.03, StuckProb: 0.001},
			fault.DefaultRecovery(), []int{100, 101, 102, 103, 104, 105, 106, 107}, workers)
		progs := loadAndAdd(e, 8, 64)
		for i := 0; i < 3; i++ {
			e.Sequence(e.ExecBlocks("add", progs))
		}
		if err := e.Err(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.FaultReport().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return e.TimelineDigest(), buf.Bytes()
	}
	dSerial, rSerial := run(1)
	dPar, rPar := run(8)
	if dSerial != dPar {
		t.Fatalf("timeline digests diverge: serial %016x parallel %016x", dSerial, dPar)
	}
	if !bytes.Equal(rSerial, rPar) {
		t.Fatalf("fault reports diverge:\n%s\nvs\n%s", rSerial, rPar)
	}
}

// TestRemapAndSpareExhaustion: a block whose stuck bits defeat ECC past the
// retry budget is migrated to a spare (logical id redirected, sim.fault.remap
// on the timeline); when the spare fails too and the pool is empty, the
// engine latches fault.ErrNoSpares.
func TestRemapAndSpareExhaustion(t *testing.T) {
	rec := fault.DefaultRecovery()
	rec.MaxRetries = 1
	e := faultedEngine(t, fault.Config{Seed: 5, StuckProb: 1}, rec, []int{40}, 1)
	progs := loadAndAdd(e, 1, 64)

	e.Sequence(e.ExecBlocks("add", progs))
	if err := e.Err(); err != nil {
		t.Fatalf("first failure should heal via the spare: %v", err)
	}
	if got := e.Chip.Physical(0); got != 40 {
		t.Fatalf("logical block 0 resolves to physical %d, want spare 40", got)
	}
	r := e.FaultReport()
	if r.Remaps != 1 || r.SparesUsed != 1 || r.SparesLeft != 0 {
		t.Fatalf("spare accounting wrong: %s", r)
	}
	var sawRemap bool
	for _, p := range e.Timeline {
		if p.Name == "sim.fault.remap" {
			sawRemap = true
			if p.Dur <= 0 || p.EnergyJ <= 0 {
				t.Fatalf("remap phase carries no cost: %+v", p)
			}
		}
	}
	if !sawRemap {
		t.Fatal("no sim.fault.remap phase on the timeline")
	}

	// The spare is just as defective (StuckProb=1) and the pool is empty.
	e.Sequence(e.ExecBlocks("add", progs))
	if err := e.Err(); !errors.Is(err, fault.ErrNoSpares) {
		t.Fatalf("want ErrNoSpares after pool exhaustion, got %v", err)
	}
}

// TestProgRetriable: only self-contained programs may be verify-retried.
func TestProgRetriable(t *testing.T) {
	add := isa.Instr{Op: isa.OpAdd, RowCount: 4, DstOff: 2}
	cases := []struct {
		name string
		prog []isa.Instr
		want bool
	}{
		{"self-contained", []isa.Instr{add, {Op: isa.OpRead, Block: 7, Row: 1}}, true},
		{"foreign read", []isa.Instr{add, {Op: isa.OpRead, Block: 8, Row: 1}}, false},
		{"foreign write", []isa.Instr{{Op: isa.OpWrite, Block: 9, Row: 1}}, false},
		{"memcpy", []isa.Instr{{Op: isa.OpMemcpy, Block: 7, DstBlock: 8}}, false},
		{"lut", []isa.Instr{{Op: isa.OpLUT, LUTBlock: 3, Row: 0}}, true},
	}
	for _, c := range cases {
		if got := progRetriable(7, c.prog); got != c.want {
			t.Errorf("%s: progRetriable = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestNilInjectorNoFaultPhases: without an injector the ladder is fully off
// — no fault phases, empty report, digest equal to a second identical run.
func TestNilInjectorNoFaultPhases(t *testing.T) {
	run := func() *Engine {
		e := newEngine(t, true)
		progs := loadAndAdd(e, 4, 64)
		e.Sequence(e.ExecBlocks("add", progs))
		return e
	}
	a, b := run(), run()
	for _, p := range a.Timeline {
		if p.Kind == "fault" {
			t.Fatalf("fault phase %q on a fault-free timeline", p.Name)
		}
	}
	if r := a.FaultReport(); r.Counts != (fault.Counts{}) || r.Remaps != 0 || r.SparesUsed != 0 {
		t.Fatalf("fault-free engine reported %s", r)
	}
	if a.TimelineDigest() != b.TimelineDigest() {
		t.Fatal("fault-free runs are not reproducible")
	}
}
