package sim

import (
	"testing"

	"wavepim/internal/pim/isa"
)

// The parallel functional path must be indistinguishable from the serial
// one: same phase cost, same instruction count, same cell contents. Run
// these with -race to also validate that per-block work shares no mutable
// state (chip.Block's lazy allocation, passive LUT reads).

// variedProgs builds per-block programs of different lengths so workers
// finish out of order and the deterministic merge is actually exercised.
func variedProgs(nBlocks int) map[int][]isa.Instr {
	progs := make(map[int][]isa.Instr, nBlocks)
	for b := 0; b < nBlocks; b++ {
		var prog []isa.Instr
		for k := 0; k <= b%5; k++ {
			prog = append(prog,
				isa.Instr{Op: isa.OpAdd, RowStart: 0, RowCount: 4, DstOff: 2, SrcOff: 0, Src2Off: 1},
				isa.Instr{Op: isa.OpMul, RowStart: 0, RowCount: 4, DstOff: 3, SrcOff: 2, Src2Off: 1},
			)
		}
		progs[b] = prog
	}
	return progs
}

func loadOperands(e *Engine, nBlocks int) {
	for b := 0; b < nBlocks; b++ {
		blk := e.Chip.Block(b)
		for r := 0; r < 4; r++ {
			blk.SetFloat(r, 0, float32(b)+0.5)
			blk.SetFloat(r, 1, float32(r)+0.25)
		}
	}
}

func TestParallelExecBlocksMatchesSerial(t *testing.T) {
	const nBlocks = 24
	progs := variedProgs(nBlocks)

	serial := newEngine(t, true)
	loadOperands(serial, nBlocks)
	ps := serial.ExecBlocks("phase", progs)

	for _, workers := range []int{2, 3, 8, 64} {
		par := newEngine(t, true)
		par.Workers = workers
		loadOperands(par, nBlocks)
		pp := par.ExecBlocks("phase", progs)

		// Costs and counters must be bit-identical, not just close: the
		// merge runs in ascending block order on both paths.
		if ps.Dur != pp.Dur || ps.EnergyJ != pp.EnergyJ {
			t.Errorf("workers=%d: phase cost (%g, %g) != serial (%g, %g)",
				workers, pp.Dur, pp.EnergyJ, ps.Dur, ps.EnergyJ)
		}
		if serial.InstrCount != par.InstrCount {
			t.Errorf("workers=%d: InstrCount %d != %d", workers, par.InstrCount, serial.InstrCount)
		}
		for b := 0; b < nBlocks; b++ {
			sb, pb := serial.Chip.Block(b), par.Chip.Block(b)
			for r := 0; r < 4; r++ {
				for off := 0; off < 4; off++ {
					if sb.GetWord(r, off) != pb.GetWord(r, off) {
						t.Fatalf("workers=%d block %d (%d,%d): cells diverged", workers, b, r, off)
					}
				}
			}
		}
	}
}

// LUT reads from a passive block are allowed in parallel; many blocks
// fetching from the same table concurrently must agree with serial.
func TestParallelExecBlocksLUT(t *testing.T) {
	const nBlocks, lutBlock = 16, 100
	run := func(workers int) *Engine {
		e := newEngine(t, true)
		e.Workers = workers
		e.Chip.Block(lutBlock).SetFloat(77/32, 77%32, 3.5)
		progs := make(map[int][]isa.Instr, nBlocks)
		for b := 0; b < nBlocks; b++ {
			e.Chip.Block(b).SetWord(4, 1, 77)
			progs[b] = []isa.Instr{{Op: isa.OpLUT, Row: 4, SrcOff: 1, LUTBlock: lutBlock, DstOff: 9}}
		}
		e.Sequence(e.ExecBlocks("lut", progs))
		return e
	}
	serial, par := run(0), run(8)
	if serial.TotalTime() != par.TotalTime() || serial.TotalEnergy != par.TotalEnergy {
		t.Errorf("LUT phase cost diverged: (%g, %g) vs (%g, %g)",
			par.TotalTime(), par.TotalEnergy, serial.TotalTime(), serial.TotalEnergy)
	}
	for b := 0; b < nBlocks; b++ {
		if got := par.Chip.Block(b).GetFloat(4, 9); got != 3.5 {
			t.Errorf("parallel LUT block %d fetched %g, want 3.5", b, got)
		}
	}
}

// The safety scan: programs that touch foreign mutable state must force
// the serial path, programs that don't must not.
func TestBlocksIndependent(t *testing.T) {
	cases := []struct {
		name  string
		progs map[int][]isa.Instr
		want  bool
	}{
		{"own block arithmetic", map[int][]isa.Instr{
			0: {{Op: isa.OpAdd}},
			1: {{Op: isa.OpMul}},
		}, true},
		{"own row ops", map[int][]isa.Instr{
			2: {{Op: isa.OpRead, Block: 2}, {Op: isa.OpWrite, Block: 2}},
		}, true},
		{"memcpy", map[int][]isa.Instr{
			0: {{Op: isa.OpMemcpy, Block: 0, DstBlock: 5}},
		}, false},
		{"foreign read", map[int][]isa.Instr{
			0: {{Op: isa.OpRead, Block: 7}},
		}, false},
		{"foreign write", map[int][]isa.Instr{
			0: {{Op: isa.OpWrite, Block: 7}},
		}, false},
		{"LUT from passive block", map[int][]isa.Instr{
			0: {{Op: isa.OpLUT, LUTBlock: 9}},
			1: {{Op: isa.OpLUT, LUTBlock: 9}},
		}, true},
		{"LUT from an executing block", map[int][]isa.Instr{
			0: {{Op: isa.OpLUT, LUTBlock: 1}},
			1: {{Op: isa.OpAdd}},
		}, false},
	}
	for _, c := range cases {
		if got := blocksIndependent(c.progs); got != c.want {
			t.Errorf("%s: blocksIndependent = %v, want %v", c.name, got, c.want)
		}
	}
}

// Unsafe programs still execute correctly (through the serial fallback)
// with Workers set.
func TestParallelFallbackOnDependentBlocks(t *testing.T) {
	e := newEngine(t, true)
	e.Workers = 8
	src := e.Chip.Block(0)
	src.SetFloat(3, 0, 8.75)
	for w := 1; w < 32; w++ {
		src.SetWord(3, w, 0)
	}
	e.Sequence(e.ExecBlocks("copy", map[int][]isa.Instr{
		0: {{Op: isa.OpMemcpy, Block: 0, Row: 3, DstBlock: 1, DstRow: 6}},
	}))
	if got := e.Chip.Block(1).GetFloat(6, 0); got != 8.75 {
		t.Errorf("memcpy under Workers got %g, want 8.75", got)
	}
}

func TestExecWorkersBounds(t *testing.T) {
	e := &Engine{}
	if got := e.execWorkers(10); got != 0 {
		t.Errorf("unset Workers: %d", got)
	}
	e.Workers = 8
	if got := e.execWorkers(3); got != 3 {
		t.Errorf("more workers than blocks: %d", got)
	}
	if got := e.execWorkers(100); got != 8 {
		t.Errorf("bounded by Workers: %d", got)
	}
}
