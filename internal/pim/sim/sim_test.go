package sim

import (
	"math"
	"testing"

	"wavepim/internal/params"
	"wavepim/internal/pim/chip"
	"wavepim/internal/pim/isa"
	"wavepim/internal/pim/xbar"
)

func newEngine(t *testing.T, functional bool) *Engine {
	t.Helper()
	ch, err := chip.New(chip.Config512MB())
	if err != nil {
		t.Fatal(err)
	}
	return New(ch, functional)
}

// InstrCost must agree exactly with xbar's own accounting for every
// instruction kind — the single-source-of-truth invariant.
func TestInstrCostMatchesXbar(t *testing.T) {
	cases := []struct {
		name string
		in   isa.Instr
		run  func(b *xbar.Block)
	}{
		{"read", isa.Instr{Op: isa.OpRead, Row: 5},
			func(b *xbar.Block) { b.ReadRow(5) }},
		{"write", isa.Instr{Op: isa.OpWrite, Row: 5},
			func(b *xbar.Block) { b.WriteRow(5) }},
		{"add", isa.Instr{Op: isa.OpAdd, RowStart: 0, RowCount: 100, DstOff: 2, SrcOff: 0, Src2Off: 1},
			func(b *xbar.Block) { b.Arith(false, 0, 100, 2, 0, 1) }},
		{"mul", isa.Instr{Op: isa.OpMul, RowStart: 0, RowCount: 64, DstOff: 2, SrcOff: 0, Src2Off: 1},
			func(b *xbar.Block) { b.Arith(true, 0, 64, 2, 0, 1) }},
		{"broadcast", isa.Instr{Op: isa.OpBroadcast, Row: 512, RowStart: 0, RowCount: 512, SrcOff: 0, DstOff: 4, WordCount: 2},
			func(b *xbar.Block) { b.Broadcast(512, 0, 512, 0, 4, 2) }},
	}
	for _, c := range cases {
		b := xbar.New(0)
		c.run(b)
		sec, joules := InstrCost(c.in)
		if !CheckClose(sec, b.Stats.BusySec, 1e-12) {
			t.Errorf("%s: InstrCost time %g, xbar %g", c.name, sec, b.Stats.BusySec)
		}
		if !CheckClose(joules, b.Stats.EnergyJ, 1e-12) {
			t.Errorf("%s: InstrCost energy %g, xbar %g", c.name, joules, b.Stats.EnergyJ)
		}
	}
}

func TestExecBlocksParallelAcrossBlocks(t *testing.T) {
	e := newEngine(t, false)
	add := isa.Instr{Op: isa.OpAdd, RowCount: 512, DstOff: 2, SrcOff: 0, Src2Off: 1}
	// One block with 2 adds vs eight blocks with 2 adds each: same phase
	// duration (blocks run concurrently), 8x the energy.
	p1 := e.ExecBlocks("one", map[int][]isa.Instr{0: {add, add}})
	progs := make(map[int][]isa.Instr)
	for b := 0; b < 8; b++ {
		progs[b] = []isa.Instr{add, add}
	}
	p8 := e.ExecBlocks("eight", progs)
	if !CheckClose(p1.Dur, p8.Dur, 1e-12) {
		t.Errorf("block parallelism broken: %g vs %g", p1.Dur, p8.Dur)
	}
	if !CheckClose(p8.EnergyJ, 8*p1.EnergyJ, 1e-12) {
		t.Errorf("energy should scale with blocks: %g vs %g", p8.EnergyJ, p1.EnergyJ)
	}
}

func TestSequenceAndParallelTimeline(t *testing.T) {
	e := newEngine(t, false)
	add := isa.Instr{Op: isa.OpAdd, RowCount: 1, DstOff: 2, SrcOff: 0, Src2Off: 1}
	mul := isa.Instr{Op: isa.OpMul, RowCount: 1, DstOff: 2, SrcOff: 0, Src2Off: 1}
	a := e.ExecBlocks("a", map[int][]isa.Instr{0: {add}})
	b := e.ExecBlocks("b", map[int][]isa.Instr{0: {mul}})
	e.Sequence(a)
	e.Sequence(b)
	if !CheckClose(e.TotalTime(), a.Dur+b.Dur, 1e-12) {
		t.Errorf("sequence time %g want %g", e.TotalTime(), a.Dur+b.Dur)
	}
	e.Reset()
	a = e.ExecBlocks("a", map[int][]isa.Instr{0: {add}})
	b = e.ExecBlocks("b", map[int][]isa.Instr{0: {mul}})
	e.Parallel(a, b)
	if !CheckClose(e.TotalTime(), math.Max(a.Dur, b.Dur), 1e-12) {
		t.Errorf("parallel time %g want %g", e.TotalTime(), math.Max(a.Dur, b.Dur))
	}
}

func TestFunctionalArithmetic(t *testing.T) {
	e := newEngine(t, true)
	b := e.Chip.Block(3)
	b.SetFloat(0, 0, 1.5)
	b.SetFloat(0, 1, 2.5)
	e.Sequence(e.ExecBlocks("add", map[int][]isa.Instr{
		3: {{Op: isa.OpAdd, RowStart: 0, RowCount: 1, DstOff: 2, SrcOff: 0, Src2Off: 1}},
	}))
	if got := b.GetFloat(0, 2); got != 4 {
		t.Errorf("functional add got %g", got)
	}
	if e.InstrCount != 1 {
		t.Errorf("InstrCount = %d", e.InstrCount)
	}
}

func TestFunctionalTransfer(t *testing.T) {
	e := newEngine(t, true)
	src := e.Chip.Block(0)
	src.SetFloat(7, 4, 9.25)
	p := e.ExecTransfers("move", []RowTransfer{
		{SrcBlock: 0, SrcRow: 7, SrcOff: 4, DstBlock: 5, DstRow: 2, DstOff: 10, Words: 1},
	})
	e.Sequence(p)
	if got := e.Chip.Block(5).GetFloat(2, 10); got != 9.25 {
		t.Errorf("transfer got %g", got)
	}
	if p.Dur <= 0 || p.EnergyJ <= 0 {
		t.Error("transfer must cost time and energy")
	}
}

func TestTransfersDisjointTilesOverlap(t *testing.T) {
	e := newEngine(t, false)
	// Same-tile pair vs two pairs in different tiles: different tiles
	// should overlap (same makespan as a single pair, modulo endpoint
	// costs).
	one := e.ExecTransfers("one", []RowTransfer{
		{SrcBlock: 0, SrcRow: 0, DstBlock: 1, DstRow: 0, Words: 32},
	})
	two := e.ExecTransfers("two", []RowTransfer{
		{SrcBlock: 0, SrcRow: 0, DstBlock: 1, DstRow: 0, Words: 32},
		{SrcBlock: 256, SrcRow: 0, DstBlock: 257, DstRow: 0, Words: 32},
	})
	if !CheckClose(one.Dur, two.Dur, 1e-9) {
		t.Errorf("cross-tile overlap broken: %g vs %g", one.Dur, two.Dur)
	}
}

func TestCrossTileSameRouteContends(t *testing.T) {
	e := newEngine(t, false)
	tr := RowTransfer{SrcBlock: 0, SrcRow: 0, DstBlock: 300, DstRow: 0, Words: 32}
	one := e.ExecTransfers("one", []RowTransfer{tr})
	two := e.ExecTransfers("two", []RowTransfer{tr, tr})
	if two.Dur <= one.Dur {
		t.Errorf("same-route cross-tile transfers should contend: %g vs %g", one.Dur, two.Dur)
	}
}

func TestCrossTileDisjointRoutesOverlap(t *testing.T) {
	// Transfers between disjoint tile pairs ride disjoint chip-tree
	// subtrees and should not serialize against each other. 512MB has 16
	// tiles; tiles (0,1) and (4,5) sit under different level-0 chip
	// switches.
	e := newEngine(t, false)
	a := RowTransfer{SrcBlock: 0, DstBlock: 300, Words: 32}             // tile 0 -> 1
	b := RowTransfer{SrcBlock: 4 * 256, DstBlock: 5*256 + 3, Words: 32} // tile 4 -> 5
	one := e.ExecTransfers("one", []RowTransfer{a})
	both := e.ExecTransfers("both", []RowTransfer{a, b})
	if both.Dur > one.Dur*1.2 {
		t.Errorf("disjoint cross-tile transfers should overlap: %g vs %g", one.Dur, both.Dur)
	}
}

func TestLUTInstructionFunctional(t *testing.T) {
	e := newEngine(t, true)
	lutBlock := 10
	// LUT content: entry 77 = bits of 3.5. Entry k lives at row k/32,
	// word k%32 (Algorithm 1's LUTBlockID*2^20 + index*32 addressing).
	e.Chip.Block(lutBlock).SetFloat(77/32, 77%32, 3.5)
	// The executing block holds index 77 at (row 4, off 1).
	b := e.Chip.Block(2)
	b.SetWord(4, 1, 77)
	p := e.ExecBlocks("lut", map[int][]isa.Instr{
		2: {{Op: isa.OpLUT, Row: 4, SrcOff: 1, LUTBlock: lutBlock, DstOff: 9}},
	})
	e.Sequence(p)
	if got := b.GetFloat(4, 9); got != 3.5 {
		t.Errorf("LUT fetched %g, want 3.5", got)
	}
	// Cost must include the inter-block transit, so it exceeds the bare
	// 2-read+1-write floor.
	floor := 2*params.BlockRowReadLatency + params.BlockRowWriteLatency
	if p.Dur <= floor {
		t.Errorf("LUT duration %g should exceed the row-op floor %g (transit missing)", p.Dur, floor)
	}
}

func TestExecDRAM(t *testing.T) {
	e := newEngine(t, false)
	p := e.ExecDRAM("load", 900e9/2) // half a second's worth at 900 GB/s
	if !CheckClose(p.Dur, 0.5, 1e-12) {
		t.Errorf("DRAM duration %g want 0.5", p.Dur)
	}
	if !CheckClose(p.EnergyJ, params.OffChipDRAMPowerW*0.5, 1e-12) {
		t.Errorf("DRAM energy %g", p.EnergyJ)
	}
	if e.DRAMBytes != 450e9 {
		t.Errorf("DRAMBytes = %d", e.DRAMBytes)
	}
}

func TestExecHost(t *testing.T) {
	e := newEngine(t, false)
	p := e.ExecHost("sqrt", 1000, 1000)
	h := params.ARMCortexA72
	want := (1000*h.SqrtLatencySec + 1000*h.InverseLatencySec) / float64(h.Cores)
	if !CheckClose(p.Dur, want, 1e-12) {
		t.Errorf("host duration %g want %g", p.Dur, want)
	}
}

func TestStaticEnergyScalesWithTime(t *testing.T) {
	e := newEngine(t, false)
	e.Sequence(e.ExecDRAM("x", 9e9)) // 10 ms
	se := e.StaticEnergy()
	want := chip.SystemPowerW(e.Chip.Config) * e.TotalTime()
	if !CheckClose(se, want, 1e-12) {
		t.Errorf("static energy %g want %g", se, want)
	}
}

func TestPhaseTimeBreakdown(t *testing.T) {
	e := newEngine(t, false)
	e.Sequence(e.ExecDRAM("a", 9e9))
	e.Sequence(e.ExecHost("b", 10, 10))
	if e.PhaseTime("dram") <= 0 || e.PhaseTime("host") <= 0 {
		t.Error("phase breakdown missing kinds")
	}
	if e.PhaseTime("blocks") != 0 {
		t.Error("no block phases were run")
	}
}

func TestResetClearsState(t *testing.T) {
	e := newEngine(t, false)
	e.Sequence(e.ExecDRAM("a", 9e9))
	e.Reset()
	if e.TotalTime() != 0 || e.TotalEnergy != 0 || len(e.Timeline) != 0 || e.DRAMBytes != 0 {
		t.Error("Reset incomplete")
	}
}

// ExecEncoded decodes and executes a real 64-bit word stream with the
// same results as the decoded-instruction path.
func TestExecEncodedMatchesExecBlocks(t *testing.T) {
	e := newEngine(t, true)
	b := e.Chip.Block(2)
	b.SetFloat(0, 0, 1.5)
	b.SetFloat(0, 1, 2.0)
	prog := []isa.Instr{
		{Op: isa.OpAdd, RowStart: 0, RowCount: 1, DstOff: 2, SrcOff: 0, Src2Off: 1},
		{Op: isa.OpMul, RowStart: 0, RowCount: 1, DstOff: 3, SrcOff: 2, Src2Off: 1},
	}
	words, err := isa.Assemble(prog)
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.ExecEncoded("enc", map[int][]uint64{2: words})
	if err != nil {
		t.Fatal(err)
	}
	e.Sequence(p)
	if got := b.GetFloat(0, 3); got != 7 {
		t.Errorf("encoded execution got %g want 7", got)
	}
	// Cost identical to the decoded path.
	e2 := newEngine(t, false)
	p2 := e2.ExecBlocks("dec", map[int][]isa.Instr{2: prog})
	if !CheckClose(p.Dur, p2.Dur, 1e-12) || !CheckClose(p.EnergyJ, p2.EnergyJ, 1e-12) {
		t.Error("encoded and decoded paths disagree on cost")
	}
}

func TestExecEncodedRejectsGarbage(t *testing.T) {
	e := newEngine(t, false)
	if _, err := e.ExecEncoded("bad", map[int][]uint64{0: {^uint64(0)}}); err == nil {
		t.Error("garbage word should fail to decode")
	}
}
