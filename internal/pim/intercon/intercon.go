// Package intercon models the inter-block interconnect of Section 4.2 as a
// pluggable routing/congestion substrate. The paper evaluates two designs —
// the H-tree (a fanout-4 switch tree per memory tile, 85 switches for a
// 256-block tile) and the Bus (one central switch) — and this package keeps
// those two bit-exact while adding four classic NoC fabrics (mesh, torus,
// flattened butterfly, dragonfly) behind the same Topology interface. The
// essential behaviour the paper evaluates — transfers through disjoint
// routes proceed in parallel while transfers sharing a switch serialize —
// is captured by a contention-aware list scheduler built on an explicit
// estimate → occupy → backpressure loop over per-switch channel ledgers.
package intercon

import (
	"errors"
	"fmt"
	"strings"

	"wavepim/internal/params"
)

// Transfer is one inter-block payload movement (a row-buffer's worth or a
// word subset of it).
type Transfer struct {
	Src, Dst int // block indices (leaves)
	Words    int // 32-bit words moved
}

// Topology routes transfers between leaf blocks. Beyond the path view
// (Path), implementations expose a channel view — SwitchCount, Radix, and
// EgressHops — that the scheduler's occupancy ledger and the topology-sweep
// reports are built on.
type Topology interface {
	// Name returns the wire name of the topology (one of Names()).
	Name() string
	// Path returns the switch IDs a src->dst transfer traverses, in order.
	// An empty path means src == dst (no interconnect involvement).
	Path(src, dst int) []int
	// SwitchCount is the number of switches in the topology.
	SwitchCount() int
	// LeakagePowerW is the static power of all switches.
	LeakagePowerW() float64
	// Leaves is the number of leaf blocks.
	Leaves() int
	// HopLatency is the per-payload per-hop latency: H-tree and mesh
	// switches span a fanout-sized neighborhood, while bus/express/global
	// links drive longer wires and are correspondingly slower.
	HopLatency() float64
	// Radix is the port count of the busiest switch (attached leaves plus
	// inter-switch links) — the channel-view size used for leakage scaling
	// and sweep reports.
	Radix() int
	// EgressHops is the number of switch crossings from a leaf to the
	// topology's chip-port gateway (for a tree, the depth). Cross-tile
	// transfers pay this leg inside both endpoint tiles.
	EgressHops() int
}

// Names lists the wire names of every constructible topology, in the
// canonical sweep order (the two paper designs first).
func Names() []string {
	return []string{"htree", "bus", "mesh", "torus", "flatfly", "dragonfly"}
}

// ErrUnknownTopology reports a topology name outside Names().
var ErrUnknownTopology = errors.New("unknown interconnect topology")

// Config carries the per-topology construction knobs. The zero value
// selects the paper defaults.
type Config struct {
	Fanout int // H-tree fanout (default 4); ignored by the other fabrics
}

// New builds a topology by wire name over the given leaf count. The empty
// name selects the paper's default H-tree. Unknown names wrap
// ErrUnknownTopology (errors.Is-matchable).
func New(name string, leaves int, cfg Config) (Topology, error) {
	fanout := cfg.Fanout
	if fanout < 2 {
		fanout = 4
	}
	switch name {
	case "", "htree":
		return NewHTree(leaves, fanout), nil
	case "bus":
		return NewBus(leaves), nil
	case "mesh":
		return NewMesh(leaves), nil
	case "torus":
		return NewTorus(leaves), nil
	case "flatfly":
		return NewFlattenedButterfly(leaves), nil
	case "dragonfly":
		return NewDragonfly(leaves), nil
	}
	return nil, fmt.Errorf("intercon: %w: %q (known: %s)",
		ErrUnknownTopology, name, strings.Join(Names(), ", "))
}

// perSwitchLeakW is the leakage of one H-tree-class (radix-5) switch,
// derived from Table 3's 85-switch tile budget. The non-paper fabrics scale
// it by their switch count and radix.
func perSwitchLeakW() float64 {
	return params.PowerHTreeSwitchesW / params.HTreeSwitchesPerTile
}

// scaledLeakW prices a fabric of n switches of the given radix against the
// H-tree's radix-5 (four children plus one parent) reference switch.
func scaledLeakW(n, radix int) float64 {
	return perSwitchLeakW() * float64(n) * float64(radix) / 5.0
}

// ---------------------------------------------------------------------------
// H-tree
// ---------------------------------------------------------------------------

// HTree is the paper's fanout-k switch tree. Level 0 switches connect
// groups of fanout adjacent blocks (the S0 of Figure 3); each higher level
// connects fanout lower switches, up to a single root.
type HTree struct {
	leaves int
	fanout int
	// levelBase[l] is the global switch ID of the first level-l switch;
	// levelCount[l] is how many switches that level has.
	levelBase  []int
	levelCount []int
}

// NewHTree builds an H-tree over leaves blocks with the given fanout
// (the paper uses 4 but notes "the number of children of a tree node does
// not have to be 4").
func NewHTree(leaves, fanout int) *HTree {
	if leaves < 1 || fanout < 2 {
		panic(fmt.Sprintf("intercon: invalid H-tree leaves=%d fanout=%d", leaves, fanout))
	}
	h := &HTree{leaves: leaves, fanout: fanout}
	n := leaves
	base := 0
	for n > 1 {
		n = (n + fanout - 1) / fanout
		h.levelBase = append(h.levelBase, base)
		h.levelCount = append(h.levelCount, n)
		base += n
	}
	if len(h.levelBase) == 0 { // single leaf: degenerate, one root switch
		h.levelBase = []int{0}
		h.levelCount = []int{1}
	}
	return h
}

// Name implements Topology.
func (h *HTree) Name() string { return "htree" }

// Leaves implements Topology.
func (h *HTree) Leaves() int { return h.leaves }

// SwitchCount implements Topology. For the paper's 256-block tile with
// fanout 4 this is 64+16+4+1 = 85, matching Table 3.
func (h *HTree) SwitchCount() int {
	var n int
	for _, c := range h.levelCount {
		n += c
	}
	return n
}

// LeakagePowerW scales the published 85-switch tile power to this tree's
// switch count.
func (h *HTree) LeakagePowerW() float64 {
	return perSwitchLeakW() * float64(h.SwitchCount())
}

// HopLatency implements Topology.
func (h *HTree) HopLatency() float64 { return params.SwitchHopLatencySec }

// Radix implements Topology: fanout children plus the parent link.
func (h *HTree) Radix() int { return h.fanout + 1 }

// EgressHops implements Topology: the tree depth (a leaf-to-root climb).
func (h *HTree) EgressHops() int { return len(h.levelCount) }

// switchAt returns the global ID of the level-l ancestor switch of a leaf.
func (h *HTree) switchAt(leaf, level int) int {
	div := 1
	for i := 0; i <= level; i++ {
		div *= h.fanout
	}
	return h.levelBase[level] + leaf/div
}

// Path implements Topology: climb from src to the lowest common ancestor,
// then descend to dst. The Figure 3 walkthrough (Block 0 to Block 5 via
// D0->D1->D2->D3 through S0, S1, S0') is reproduced exactly.
func (h *HTree) Path(src, dst int) []int {
	if src < 0 || src >= h.leaves || dst < 0 || dst >= h.leaves {
		panic(fmt.Sprintf("intercon: leaf out of range: %d or %d (leaves=%d)", src, dst, h.leaves))
	}
	if src == dst {
		return nil
	}
	// Find LCA level: lowest level where both map to the same switch.
	lca := 0
	for h.switchAt(src, lca) != h.switchAt(dst, lca) {
		lca++
	}
	var path []int
	for l := 0; l < lca; l++ {
		path = append(path, h.switchAt(src, l))
	}
	path = append(path, h.switchAt(src, lca))
	for l := lca - 1; l >= 0; l-- {
		path = append(path, h.switchAt(dst, l))
	}
	return path
}

// ---------------------------------------------------------------------------
// Bus
// ---------------------------------------------------------------------------

// Bus is the single-switch alternative: cheap and low-leakage, but every
// transfer serializes through switch 0.
type Bus struct {
	leaves int
}

// NewBus builds a bus over leaves blocks.
func NewBus(leaves int) *Bus {
	if leaves < 1 {
		panic("intercon: bus needs at least one leaf")
	}
	return &Bus{leaves: leaves}
}

// Name implements Topology.
func (b *Bus) Name() string { return "bus" }

// Leaves implements Topology.
func (b *Bus) Leaves() int { return b.leaves }

// SwitchCount implements Topology.
func (b *Bus) SwitchCount() int { return 1 }

// LeakagePowerW implements Topology (Table 3's 17.2 mW bus switch).
func (b *Bus) LeakagePowerW() float64 { return params.PowerBusSwitchW }

// HopLatency implements Topology: the central bus switch drives
// tile-spanning wires, so each payload beat is slower than an H-tree
// switch's neighborhood hop.
func (b *Bus) HopLatency() float64 { return params.BusHopPenalty * params.SwitchHopLatencySec }

// Radix implements Topology: every leaf hangs off the one switch.
func (b *Bus) Radix() int { return b.leaves }

// EgressHops implements Topology.
func (b *Bus) EgressHops() int { return 1 }

// Path implements Topology.
func (b *Bus) Path(src, dst int) []int {
	if src < 0 || src >= b.leaves || dst < 0 || dst >= b.leaves {
		panic(fmt.Sprintf("intercon: leaf out of range: %d or %d (leaves=%d)", src, dst, b.leaves))
	}
	if src == dst {
		return nil
	}
	return []int{0}
}

// ---------------------------------------------------------------------------
// Contention-aware scheduling: estimate -> occupy -> backpressure
// ---------------------------------------------------------------------------

// Span records when one transfer occupied the interconnect.
type Span struct {
	Transfer Transfer
	Start    float64
	End      float64
	Hops     int
}

// Schedule is the result of scheduling a batch of transfers.
type Schedule struct {
	Spans    []Span
	Makespan float64 // time until the last transfer completes
	EnergyJ  float64 // dynamic switching energy
	Words    int64   // total words moved
	// Backpressure accounting: a transfer whose estimated injection time
	// is pushed past zero by a busy switch on its route counts as one
	// backpressure event, and the push is its backpressure wait.
	Backpressured   int
	BackpressureSec float64
}

// Occupancy is the per-switch channel ledger of the contention loop: for
// every switch it tracks when the switch next falls idle, and optionally
// accumulates total busy-seconds per switch (the sweep reports' occupancy
// histograms). One ledger prices one batch; the simulated timeline charges
// batches sequentially exactly as before.
type Occupancy struct {
	free map[int]float64
	busy []float64 // per-switch busy seconds; nil when not tracked
}

// NewOccupancy builds an empty ledger for a topology. busy, when non-nil,
// must have at least t.SwitchCount() entries; Occupy accumulates each
// switch's occupied seconds into it (across ledgers, if shared).
func NewOccupancy(busy []float64) *Occupancy {
	return &Occupancy{free: make(map[int]float64), busy: busy}
}

// Estimate returns the earliest start time at which every switch of the
// path is free when the payload stream reaches it under store-and-forward
// pipelining (the stream hits switch i at start + i*hop).
func (o *Occupancy) Estimate(path []int, hop float64) float64 {
	var start float64
	for i, s := range path {
		if t := o.free[s] - float64(i)*hop; t > start {
			start = t
		}
	}
	return start
}

// Occupy books the path: switch i is busy from start + i*hop for occupy
// seconds. Subsequent Estimates on overlapping routes are pushed behind
// this booking — that push is the backpressure the scheduler accounts.
func (o *Occupancy) Occupy(path []int, hop, start, occupy float64) {
	for i, s := range path {
		o.free[s] = start + float64(i)*hop + occupy
	}
	if o.busy != nil {
		for _, s := range path {
			o.busy[s] += occupy
		}
	}
}

// ScheduleBatch schedules the transfers in order with greedy list
// scheduling under store-and-forward pipelining: the payload stream
// occupies switch i of its route for payloads hop-cycles starting one
// hop-cycle after switch i-1, so a switch is released as soon as the
// stream has passed through it. Each transfer runs one estimate -> occupy
// round against the batch's channel ledger; a congested switch backpressures
// later transfers (serializing them), while disjoint routes overlap fully —
// on the bus every route shares switch 0 and therefore serializes, the
// Section 4.2.2 behaviour ("the bus switch processes these transmissions
// sequentially").
func ScheduleBatch(topo Topology, batch []Transfer) Schedule {
	return ScheduleBatchBusy(topo, batch, nil)
}

// ScheduleBatchBusy is ScheduleBatch with per-switch busy-seconds
// accumulation into busy (len >= topo.SwitchCount(); nil disables). The
// timing math is identical — busy tracking only observes the ledger.
func ScheduleBatchBusy(topo Topology, batch []Transfer, busy []float64) Schedule {
	occ := NewOccupancy(busy)
	var out Schedule
	// Per-transfer spans are kept for inspection on small batches only;
	// large timing-mode batches (hundreds of thousands of transfers) skip
	// them to bound memory.
	recordSpans := len(batch) <= 4096
	hop := topo.HopLatency()
	for _, tr := range batch {
		path := topo.Path(tr.Src, tr.Dst)
		if len(path) == 0 {
			continue
		}
		payloads := (tr.Words + params.PayloadWords - 1) / params.PayloadWords
		occupy := float64(payloads) * hop
		// Estimate: earliest start such that every switch i is free at
		// start + i*hop.
		start := occ.Estimate(path, hop)
		// Occupy: book the route at that start.
		occ.Occupy(path, hop, start, occupy)
		// Backpressure: any push past immediate injection means a busy
		// switch serialized this transfer behind an earlier one.
		if start > 0 {
			out.Backpressured++
			out.BackpressureSec += start
		}
		end := start + float64(len(path)-1)*hop + occupy
		if recordSpans {
			out.Spans = append(out.Spans, Span{Transfer: tr, Start: start, End: end, Hops: len(path)})
		}
		if end > out.Makespan {
			out.Makespan = end
		}
		out.EnergyJ += float64(tr.Words*len(path)) * params.SwitchHopEnergyJ
		out.Words += int64(tr.Words)
	}
	return out
}

// FilterMasked partitions a batch for a topology with masked-off (failed
// or retired) leaves: transfers whose endpoints are all healthy are
// routable; transfers touching a masked leaf — or a leaf outside the
// topology — are returned separately so the caller can remap them instead
// of panicking inside Path. This is the route-around primitive of
// spare-block remapping: a retired physical block disappears from the
// schedulable set, and the cost models only ever see healthy endpoints.
func FilterMasked(t Topology, batch []Transfer, masked map[int]bool) (routable, rejected []Transfer) {
	n := t.Leaves()
	for _, tr := range batch {
		bad := tr.Src < 0 || tr.Src >= n || tr.Dst < 0 || tr.Dst >= n ||
			masked[tr.Src] || masked[tr.Dst]
		if bad {
			rejected = append(rejected, tr)
		} else {
			routable = append(routable, tr)
		}
	}
	return routable, rejected
}
