package intercon

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randMask masks off a random subset of the 64 leaves (possibly none,
// possibly many — partial failure of a tile).
func randMask(r *rand.Rand) map[int]bool {
	masked := make(map[int]bool)
	for n := r.Intn(16); n > 0; n-- {
		masked[r.Intn(64)] = true
	}
	return masked
}

// Property: FilterMasked partitions exactly (no transfer lost or
// duplicated), rejected transfers are precisely the ones touching a masked
// or out-of-range leaf, and the routable remainder schedules without
// panicking on both topologies.
func TestFilterMaskedPartitionAndSchedule(t *testing.T) {
	topos := allTopos(t, 64)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		batch := randBatch(r, 1+r.Intn(24))
		// Corrupt a few endpoints out of range, as a remap gone wrong would.
		for i := range batch {
			if r.Intn(8) == 0 {
				batch[i].Dst = 64 + r.Intn(16)
			}
			if r.Intn(16) == 0 {
				batch[i].Src = -1 - r.Intn(4)
			}
		}
		masked := randMask(r)
		for _, topo := range topos {
			routable, rejected := FilterMasked(topo, batch, masked)
			if len(routable)+len(rejected) != len(batch) {
				return false
			}
			for _, tr := range routable {
				if tr.Src < 0 || tr.Src >= 64 || tr.Dst < 0 || tr.Dst >= 64 ||
					masked[tr.Src] || masked[tr.Dst] {
					return false
				}
			}
			for _, tr := range rejected {
				ok := tr.Src >= 0 && tr.Src < 64 && tr.Dst >= 0 && tr.Dst < 64 &&
					!masked[tr.Src] && !masked[tr.Dst]
				if ok {
					return false // a healthy transfer was rejected
				}
			}
			// The surviving set must be schedulable — this is what protects
			// the engine from routing through a retired block.
			s := ScheduleBatch(topo, routable)
			if len(routable) > 0 && s.Makespan < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: with nothing masked and all endpoints valid, FilterMasked is
// the identity on the batch.
func TestFilterMaskedIdentityWhenHealthy(t *testing.T) {
	topo := NewHTree(64, 4)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		batch := randBatch(r, 1+r.Intn(24))
		routable, rejected := FilterMasked(topo, batch, nil)
		if len(rejected) != 0 || len(routable) != len(batch) {
			return false
		}
		for i := range batch {
			if routable[i] != batch[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
