package intercon

import (
	"fmt"

	"wavepim/internal/params"
)

// The four non-paper NoC fabrics. All share one construction convention:
// blocks attach to switches with a fixed concentration (gridConcentration
// leaves per switch, mirroring the H-tree's fanout-4 level-0 switches),
// and the switches form the fabric proper. Routing is deterministic —
// dimension-ordered on mesh/torus, row-first on the flattened butterfly,
// gateway-ordered on the dragonfly — so path choice never depends on load
// and two identical runs schedule identically.

// gridConcentration is the number of leaves attached to each switch of the
// mesh-family fabrics (matches the H-tree's level-0 grouping).
const gridConcentration = 4

// grid lays switches out row-major on a kx * ky rectangle.
type grid struct {
	leaves   int
	switches int
	kx, ky   int
}

func newGrid(leaves int) grid {
	if leaves < 1 {
		panic("intercon: grid needs at least one leaf")
	}
	switches := (leaves + gridConcentration - 1) / gridConcentration
	kx := 1
	for kx*kx < switches {
		kx++
	}
	ky := (switches + kx - 1) / kx
	return grid{leaves: leaves, switches: switches, kx: kx, ky: ky}
}

// switchOf returns the switch a leaf attaches to.
func (g grid) switchOf(leaf int) int { return leaf / gridConcentration }

func (g grid) coords(s int) (x, y int) { return s % g.kx, s / g.kx }

func (g grid) id(x, y int) int { return y*g.kx + x }

func (g grid) checkLeaves(src, dst int) {
	if src < 0 || src >= g.leaves || dst < 0 || dst >= g.leaves {
		panic(fmt.Sprintf("intercon: leaf out of range: %d or %d (leaves=%d)", src, dst, g.leaves))
	}
}

// ---------------------------------------------------------------------------
// Mesh
// ---------------------------------------------------------------------------

// Mesh is a 2D mesh of concentrated switches with XY dimension-order
// routing: a transfer first walks its row to the destination column, then
// the column to the destination row. Neighborhood links keep the hop
// latency at the H-tree switch latency, but long Manhattan routes cross
// many switches.
type Mesh struct {
	g grid
}

// NewMesh builds a concentrated 2D mesh over leaves blocks.
func NewMesh(leaves int) *Mesh { return &Mesh{g: newGrid(leaves)} }

// Name implements Topology.
func (m *Mesh) Name() string { return "mesh" }

// Leaves implements Topology.
func (m *Mesh) Leaves() int { return m.g.leaves }

// SwitchCount implements Topology.
func (m *Mesh) SwitchCount() int { return m.g.kx * m.g.ky }

// Radix implements Topology: four mesh neighbors plus the attached leaves.
func (m *Mesh) Radix() int { return gridConcentration + 4 }

// LeakagePowerW implements Topology.
func (m *Mesh) LeakagePowerW() float64 { return scaledLeakW(m.SwitchCount(), m.Radix()) }

// HopLatency implements Topology: mesh links span one switch neighborhood.
func (m *Mesh) HopLatency() float64 { return params.MeshHopPenalty * params.SwitchHopLatencySec }

// EgressHops implements Topology: corner leaf to the central gateway.
func (m *Mesh) EgressHops() int { return m.g.kx/2 + m.g.ky/2 + 1 }

// Path implements Topology with XY dimension-order routing.
func (m *Mesh) Path(src, dst int) []int {
	m.g.checkLeaves(src, dst)
	if src == dst {
		return nil
	}
	s1, s2 := m.g.switchOf(src), m.g.switchOf(dst)
	if s1 == s2 {
		return []int{s1}
	}
	x, y := m.g.coords(s1)
	x2, y2 := m.g.coords(s2)
	path := []int{s1}
	for x != x2 {
		if x < x2 {
			x++
		} else {
			x--
		}
		path = append(path, m.g.id(x, y))
	}
	for y != y2 {
		if y < y2 {
			y++
		} else {
			y--
		}
		path = append(path, m.g.id(x, y))
	}
	return path
}

// ---------------------------------------------------------------------------
// Torus
// ---------------------------------------------------------------------------

// Torus is the mesh with wraparound links in both dimensions; routing is
// dimension-ordered along the shorter wrap direction (ties break toward
// increasing coordinates, keeping routing deterministic).
type Torus struct {
	g grid
}

// NewTorus builds a concentrated 2D torus over leaves blocks.
func NewTorus(leaves int) *Torus { return &Torus{g: newGrid(leaves)} }

// Name implements Topology.
func (t *Torus) Name() string { return "torus" }

// Leaves implements Topology.
func (t *Torus) Leaves() int { return t.g.leaves }

// SwitchCount implements Topology.
func (t *Torus) SwitchCount() int { return t.g.kx * t.g.ky }

// Radix implements Topology.
func (t *Torus) Radix() int { return gridConcentration + 4 }

// LeakagePowerW implements Topology.
func (t *Torus) LeakagePowerW() float64 { return scaledLeakW(t.SwitchCount(), t.Radix()) }

// HopLatency implements Topology.
func (t *Torus) HopLatency() float64 { return params.MeshHopPenalty * params.SwitchHopLatencySec }

// EgressHops implements Topology: wraparound halves the worst leg.
func (t *Torus) EgressHops() int { return (t.g.kx+3)/4 + (t.g.ky+3)/4 + 1 }

// wrapStep returns the per-hop step (+1 or -1 modulo k) of the shorter
// direction from a to b on a k-ring; ties go forward.
func wrapStep(a, b, k int) int {
	fwd := (b - a + k) % k
	if fwd <= k-fwd {
		return 1
	}
	return -1
}

// Path implements Topology with wrap-aware dimension-order routing.
func (t *Torus) Path(src, dst int) []int {
	t.g.checkLeaves(src, dst)
	if src == dst {
		return nil
	}
	s1, s2 := t.g.switchOf(src), t.g.switchOf(dst)
	if s1 == s2 {
		return []int{s1}
	}
	x, y := t.g.coords(s1)
	x2, y2 := t.g.coords(s2)
	path := []int{s1}
	for step := wrapStep(x, x2, t.g.kx); x != x2; {
		x = (x + step + t.g.kx) % t.g.kx
		path = append(path, t.g.id(x, y))
	}
	for step := wrapStep(y, y2, t.g.ky); y != y2; {
		y = (y + step + t.g.ky) % t.g.ky
		path = append(path, t.g.id(x, y))
	}
	return path
}

// ---------------------------------------------------------------------------
// Flattened butterfly
// ---------------------------------------------------------------------------

// FlattenedButterfly is the mesh grid with express links: every switch
// links directly to every other switch in its row and in its column, so
// any route crosses at most three switches (source, the row/column corner,
// destination). The express wires span whole rows, priced by the flattened
// butterfly hop penalty.
type FlattenedButterfly struct {
	g grid
}

// NewFlattenedButterfly builds a concentrated flattened butterfly.
func NewFlattenedButterfly(leaves int) *FlattenedButterfly {
	return &FlattenedButterfly{g: newGrid(leaves)}
}

// Name implements Topology.
func (f *FlattenedButterfly) Name() string { return "flatfly" }

// Leaves implements Topology.
func (f *FlattenedButterfly) Leaves() int { return f.g.leaves }

// SwitchCount implements Topology.
func (f *FlattenedButterfly) SwitchCount() int { return f.g.kx * f.g.ky }

// Radix implements Topology: full row plus full column express links.
func (f *FlattenedButterfly) Radix() int {
	return gridConcentration + (f.g.kx - 1) + (f.g.ky - 1)
}

// LeakagePowerW implements Topology.
func (f *FlattenedButterfly) LeakagePowerW() float64 {
	return scaledLeakW(f.SwitchCount(), f.Radix())
}

// HopLatency implements Topology: express links cross whole rows/columns.
func (f *FlattenedButterfly) HopLatency() float64 {
	return params.FlatFlyHopPenalty * params.SwitchHopLatencySec
}

// EgressHops implements Topology: any switch reaches the gateway in one
// express hop.
func (f *FlattenedButterfly) EgressHops() int { return 2 }

// Path implements Topology with deterministic row-first routing: the
// intermediate switch is the one sharing src's row and dst's column.
func (f *FlattenedButterfly) Path(src, dst int) []int {
	f.g.checkLeaves(src, dst)
	if src == dst {
		return nil
	}
	s1, s2 := f.g.switchOf(src), f.g.switchOf(dst)
	if s1 == s2 {
		return []int{s1}
	}
	x1, y1 := f.g.coords(s1)
	x2, y2 := f.g.coords(s2)
	if x1 == x2 || y1 == y2 {
		return []int{s1, s2}
	}
	return []int{s1, f.g.id(x2, y1), s2}
}

// ---------------------------------------------------------------------------
// Dragonfly
// ---------------------------------------------------------------------------

// dragonflyGroupSize is the number of switches per dragonfly group ("a" in
// the canonical parameterization).
const dragonflyGroupSize = 4

// Dragonfly groups switches into all-to-all-connected pods; pods connect
// pairwise through global links whose endpoints are spread across the
// group's switches. Any route crosses at most four switches: source, the
// source group's gateway toward the destination group, the destination
// group's gateway back, destination. Global links span the tile, priced by
// the dragonfly hop penalty.
type Dragonfly struct {
	leaves   int
	switches int
	groups   int
}

// NewDragonfly builds a concentrated dragonfly over leaves blocks.
func NewDragonfly(leaves int) *Dragonfly {
	if leaves < 1 {
		panic("intercon: dragonfly needs at least one leaf")
	}
	switches := (leaves + gridConcentration - 1) / gridConcentration
	groups := (switches + dragonflyGroupSize - 1) / dragonflyGroupSize
	return &Dragonfly{leaves: leaves, switches: switches, groups: groups}
}

// Name implements Topology.
func (d *Dragonfly) Name() string { return "dragonfly" }

// Leaves implements Topology.
func (d *Dragonfly) Leaves() int { return d.leaves }

// SwitchCount implements Topology.
func (d *Dragonfly) SwitchCount() int { return d.switches }

// Radix implements Topology: intra-group all-to-all plus this switch's
// share of the group's global links.
func (d *Dragonfly) Radix() int {
	globalsPerSwitch := (d.groups - 1 + dragonflyGroupSize - 1) / dragonflyGroupSize
	return gridConcentration + (dragonflyGroupSize - 1) + globalsPerSwitch
}

// LeakagePowerW implements Topology.
func (d *Dragonfly) LeakagePowerW() float64 { return scaledLeakW(d.SwitchCount(), d.Radix()) }

// HopLatency implements Topology.
func (d *Dragonfly) HopLatency() float64 {
	return params.DragonflyHopPenalty * params.SwitchHopLatencySec
}

// EgressHops implements Topology: own switch plus the group gateway.
func (d *Dragonfly) EgressHops() int { return 2 }

func (d *Dragonfly) groupOf(s int) int { return s / dragonflyGroupSize }

// gateway returns the switch in group g that terminates the global link
// toward group other. Spreading link endpoints by destination group keeps
// global traffic from funneling through one switch per group; clamping
// keeps the gateway inside a partial trailing group.
func (d *Dragonfly) gateway(g, other int) int {
	s := g*dragonflyGroupSize + other%dragonflyGroupSize
	if s >= d.switches {
		s = g * dragonflyGroupSize
	}
	return s
}

// Path implements Topology with minimal gateway routing.
func (d *Dragonfly) Path(src, dst int) []int {
	if src < 0 || src >= d.leaves || dst < 0 || dst >= d.leaves {
		panic(fmt.Sprintf("intercon: leaf out of range: %d or %d (leaves=%d)", src, dst, d.leaves))
	}
	if src == dst {
		return nil
	}
	s1 := src / gridConcentration
	s2 := dst / gridConcentration
	if s1 == s2 {
		return []int{s1}
	}
	g1, g2 := d.groupOf(s1), d.groupOf(s2)
	if g1 == g2 {
		return []int{s1, s2}
	}
	path := []int{s1}
	if gw := d.gateway(g1, g2); gw != s1 {
		path = append(path, gw)
	}
	if gw := d.gateway(g2, g1); gw != s2 {
		path = append(path, gw)
	}
	return append(path, s2)
}
