package intercon

import (
	"math"
	"testing"
	"testing/quick"

	"wavepim/internal/params"
)

func TestHTreeSwitchCount256(t *testing.T) {
	// Section 4.2.2: "in a 256-block memory tile, 4+16+64 = 85 H-tree node
	// switches have to be used" (i.e. 64 S0 + 16 S1 + 4 S2 + 1 root).
	h := NewHTree(256, 4)
	if got := h.SwitchCount(); got != 85 {
		t.Errorf("256-block H-tree has %d switches, want 85", got)
	}
	if h.Name() != "htree" || h.Leaves() != 256 {
		t.Error("metadata wrong")
	}
}

func TestHTreeSwitchCount16(t *testing.T) {
	// Figure 3's example: a 16-block tile has 4 S0 and 1 S1.
	h := NewHTree(16, 4)
	if got := h.SwitchCount(); got != 5 {
		t.Errorf("16-block H-tree has %d switches, want 5", got)
	}
}

func TestHTreePathBlock0ToBlock5(t *testing.T) {
	// Figure 3's walkthrough: Block 0 -> Block 5 passes S0(0), S1, S0(1):
	// three switches, carried by memcpy instructions I1, I2, I3.
	h := NewHTree(16, 4)
	path := h.Path(0, 5)
	if len(path) != 3 {
		t.Fatalf("path 0->5 has %d switches, want 3 (%v)", len(path), path)
	}
	// First and last are level-0 switches of the two endpoints.
	if path[0] != 0 {
		t.Errorf("first hop should be block 0's S0 (id 0), got %d", path[0])
	}
	if path[2] != 1 {
		t.Errorf("last hop should be block 5's S0 (id 1), got %d", path[2])
	}
}

func TestHTreeSiblingPathIsOneSwitch(t *testing.T) {
	// Blocks under the same S0 talk through just that switch — the paper's
	// argument for multi-block elements ("the data will only pass through
	// one S0 H-tree switch").
	h := NewHTree(256, 4)
	path := h.Path(8, 11)
	if len(path) != 1 {
		t.Errorf("sibling path has %d switches, want 1 (%v)", len(path), path)
	}
}

func TestHTreePathSymmetry(t *testing.T) {
	h := NewHTree(64, 4)
	f := func(a, b uint8) bool {
		src, dst := int(a)%64, int(b)%64
		p1, p2 := h.Path(src, dst), h.Path(dst, src)
		if len(p1) != len(p2) {
			return false
		}
		// Reverse of p2 equals p1.
		for i := range p1 {
			if p1[i] != p2[len(p2)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHTreePathOddLength(t *testing.T) {
	// Up-then-down routes always traverse an odd number of switches.
	h := NewHTree(256, 4)
	for _, pair := range [][2]int{{0, 1}, {0, 5}, {0, 255}, {17, 200}, {100, 101}} {
		p := h.Path(pair[0], pair[1])
		if len(p)%2 != 1 {
			t.Errorf("path %v has even length %d: %v", pair, len(p), p)
		}
	}
}

func TestBusAlwaysOneSwitch(t *testing.T) {
	b := NewBus(256)
	if b.SwitchCount() != 1 || b.Name() != "bus" {
		t.Error("bus metadata wrong")
	}
	if p := b.Path(3, 250); len(p) != 1 || p[0] != 0 {
		t.Errorf("bus path %v", p)
	}
	if p := b.Path(7, 7); p != nil {
		t.Errorf("self path should be empty, got %v", p)
	}
}

func TestLeakageHTreeVsBus(t *testing.T) {
	h, b := NewHTree(256, 4), NewBus(256)
	if h.LeakagePowerW() <= b.LeakagePowerW() {
		t.Error("H-tree leakage must exceed bus leakage (Section 4.2.2)")
	}
	// The 256-block tile H-tree leakage equals Table 3's 107.13 mW.
	if math.Abs(h.LeakagePowerW()-params.PowerHTreeSwitchesW) > 1e-9 {
		t.Errorf("256-block H-tree leakage %g W, want %g W", h.LeakagePowerW(), params.PowerHTreeSwitchesW)
	}
}

func TestScheduleParallelVsSerial(t *testing.T) {
	// The Figure 3 bus example: Block 0->2 and Block 5->7 run concurrently
	// on the H-tree but serialize on the bus.
	batch := []Transfer{{Src: 0, Dst: 2, Words: 32}, {Src: 5, Dst: 7, Words: 32}}
	h := ScheduleBatch(NewHTree(16, 4), batch)
	b := ScheduleBatch(NewBus(16), batch)
	if h.Makespan >= b.Makespan {
		t.Errorf("H-tree makespan %g should beat bus %g on disjoint transfers", h.Makespan, b.Makespan)
	}
	// Bus serializes exactly: makespan = 2 x single-transfer duration.
	single := ScheduleBatch(NewBus(16), batch[:1])
	if math.Abs(b.Makespan-2*single.Makespan) > 1e-12 {
		t.Errorf("bus makespan %g, want exactly 2x %g", b.Makespan, single.Makespan)
	}
	// H-tree runs them fully in parallel (disjoint S0 subtrees).
	hSingle := ScheduleBatch(NewHTree(16, 4), batch[:1])
	if math.Abs(h.Makespan-hSingle.Makespan) > 1e-12 {
		t.Errorf("htree makespan %g, want %g (full overlap)", h.Makespan, hSingle.Makespan)
	}
}

func TestHTreeNeverSlowerThanBus(t *testing.T) {
	// Property: for any batch, the H-tree makespan is <= the bus makespan
	// plus route-depth fill overhead. With neighbor-heavy traffic it is
	// strictly smaller.
	h := NewHTree(64, 4)
	b := NewBus(64)
	f := func(seeds [6]uint16) bool {
		var batch []Transfer
		for _, s := range seeds {
			src := int(s) % 64
			dst := (src + 1 + int(s>>8)%4) % 64
			batch = append(batch, Transfer{Src: src, Dst: dst, Words: 32})
		}
		hs := ScheduleBatch(h, batch)
		bs := ScheduleBatch(b, batch)
		// Fill overhead bound: deepest route adds (hops-1) word-times per
		// transfer.
		bound := bs.Makespan + float64(len(batch)*6)*params.SwitchHopLatencySec
		return hs.Makespan <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestScheduleEnergyAccounting(t *testing.T) {
	h := NewHTree(16, 4)
	s := ScheduleBatch(h, []Transfer{{Src: 0, Dst: 5, Words: 10}})
	want := float64(10*3) * params.SwitchHopEnergyJ // 3 hops x 10 words
	if math.Abs(s.EnergyJ-want) > 1e-20 {
		t.Errorf("energy %g want %g", s.EnergyJ, want)
	}
	if s.Words != 10 {
		t.Errorf("words %d", s.Words)
	}
	if len(s.Spans) != 1 || s.Spans[0].Hops != 3 {
		t.Errorf("spans %+v", s.Spans)
	}
}

func TestScheduleSelfTransferFree(t *testing.T) {
	s := ScheduleBatch(NewHTree(16, 4), []Transfer{{Src: 3, Dst: 3, Words: 32}})
	if s.Makespan != 0 || s.EnergyJ != 0 || len(s.Spans) != 0 {
		t.Errorf("self transfer should be free: %+v", s)
	}
}

func TestHTreeFanout8(t *testing.T) {
	// The paper: fanout "can be higher when customizing PIM systems for
	// larger-scale models". 64 leaves with fanout 8: 8 + 1 switches.
	h := NewHTree(64, 8)
	if got := h.SwitchCount(); got != 9 {
		t.Errorf("fanout-8 switch count %d, want 9", got)
	}
	if p := h.Path(0, 7); len(p) != 1 {
		t.Errorf("blocks 0-7 share one fanout-8 switch, path %v", p)
	}
}

func TestConstructorPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewHTree(0, 4) },
		func() { NewHTree(16, 1) },
		func() { NewBus(0) },
		func() { NewHTree(16, 4).Path(16, 0) },
		func() { NewBus(4).Path(0, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
