package intercon

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randBatch builds a random transfer batch over a 64-leaf topology.
func randBatch(r *rand.Rand, n int) []Transfer {
	batch := make([]Transfer, n)
	for i := range batch {
		src := r.Intn(64)
		dst := r.Intn(64)
		for dst == src {
			dst = r.Intn(64)
		}
		batch[i] = Transfer{Src: src, Dst: dst, Words: 1 + r.Intn(256)}
	}
	return batch
}

// singleDur prices one transfer alone.
func singleDur(topo Topology, tr Transfer) float64 {
	return ScheduleBatch(topo, []Transfer{tr}).Makespan
}

// Property: the makespan is bounded below by the longest individual
// transfer and above by the fully serial sum.
func TestScheduleMakespanBounds(t *testing.T) {
	topos := []Topology{NewHTree(64, 4), NewBus(64)}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		batch := randBatch(r, 1+r.Intn(20))
		for _, topo := range topos {
			s := ScheduleBatch(topo, batch)
			var longest, serial float64
			for _, tr := range batch {
				d := singleDur(topo, tr)
				serial += d
				if d > longest {
					longest = d
				}
			}
			if s.Makespan < longest-1e-15 || s.Makespan > serial+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: energy is order-independent and additive (it counts physical
// word-hops, not scheduling luck).
func TestScheduleEnergyOrderIndependent(t *testing.T) {
	topo := NewHTree(64, 4)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		batch := randBatch(r, 2+r.Intn(10))
		e1 := ScheduleBatch(topo, batch).EnergyJ
		// Reverse the order.
		rev := make([]Transfer, len(batch))
		for i, tr := range batch {
			rev[len(batch)-1-i] = tr
		}
		e2 := ScheduleBatch(topo, rev).EnergyJ
		var sum float64
		for _, tr := range batch {
			sum += ScheduleBatch(topo, []Transfer{tr}).EnergyJ
		}
		return closeRel(e1, e2, 1e-12) && closeRel(e1, sum, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func closeRel(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	return d <= tol*(1+m)
}

// Property: adding a transfer never shrinks the makespan (work
// monotonicity under the greedy scheduler).
func TestScheduleMonotoneInWork(t *testing.T) {
	topo := NewBus(64)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		batch := randBatch(r, 1+r.Intn(10))
		base := ScheduleBatch(topo, batch).Makespan
		more := ScheduleBatch(topo, append(batch, randBatch(r, 1)...)).Makespan
		return more >= base-1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: on the bus, the makespan is exactly the serial sum of
// occupancies (one switch, full serialization).
func TestBusMakespanIsSerialSum(t *testing.T) {
	topo := NewBus(64)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		batch := randBatch(r, 1+r.Intn(12))
		s := ScheduleBatch(topo, batch)
		var sum float64
		for _, tr := range batch {
			sum += singleDur(topo, tr)
		}
		return closeRel(s.Makespan, sum, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: H-tree path lengths are symmetric in distance classes — blocks
// in the same fanout group have 1-switch paths; the path length never
// exceeds 2*depth - 1.
func TestHTreePathLengthBounds(t *testing.T) {
	h := NewHTree(256, 4)
	maxLen := 2*4 - 1 // depth 4 tree over 256 leaves
	f := func(a, b uint8) bool {
		src, dst := int(a), int(b)
		if src == dst {
			return true
		}
		p := h.Path(src, dst)
		if len(p) < 1 || len(p) > maxLen {
			return false
		}
		if src/4 == dst/4 && len(p) != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
