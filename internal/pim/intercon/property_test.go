package intercon

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// allTopos builds every constructible topology over the given leaf count
// through the factory — the same path production configs take.
func allTopos(t *testing.T, leaves int) []Topology {
	t.Helper()
	var topos []Topology
	for _, name := range Names() {
		topo, err := New(name, leaves, Config{})
		if err != nil {
			t.Fatalf("New(%q, %d): %v", name, leaves, err)
		}
		topos = append(topos, topo)
	}
	return topos
}

// randBatch builds a random transfer batch over a 64-leaf topology.
func randBatch(r *rand.Rand, n int) []Transfer {
	batch := make([]Transfer, n)
	for i := range batch {
		src := r.Intn(64)
		dst := r.Intn(64)
		for dst == src {
			dst = r.Intn(64)
		}
		batch[i] = Transfer{Src: src, Dst: dst, Words: 1 + r.Intn(256)}
	}
	return batch
}

// singleDur prices one transfer alone.
func singleDur(topo Topology, tr Transfer) float64 {
	return ScheduleBatch(topo, []Transfer{tr}).Makespan
}

// Property: the makespan is bounded below by the longest individual
// transfer and above by the fully serial sum.
func TestScheduleMakespanBounds(t *testing.T) {
	topos := allTopos(t, 64)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		batch := randBatch(r, 1+r.Intn(20))
		for _, topo := range topos {
			s := ScheduleBatch(topo, batch)
			var longest, serial float64
			for _, tr := range batch {
				d := singleDur(topo, tr)
				serial += d
				if d > longest {
					longest = d
				}
			}
			if s.Makespan < longest-1e-15 || s.Makespan > serial+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: energy is order-independent and additive (it counts physical
// word-hops, not scheduling luck) — on every fabric.
func TestScheduleEnergyOrderIndependent(t *testing.T) {
	topos := allTopos(t, 64)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		batch := randBatch(r, 2+r.Intn(10))
		for _, topo := range topos {
			e1 := ScheduleBatch(topo, batch).EnergyJ
			// Reverse the order.
			rev := make([]Transfer, len(batch))
			for i, tr := range batch {
				rev[len(batch)-1-i] = tr
			}
			e2 := ScheduleBatch(topo, rev).EnergyJ
			var sum float64
			for _, tr := range batch {
				sum += ScheduleBatch(topo, []Transfer{tr}).EnergyJ
			}
			if !closeRel(e1, e2, 1e-12) || !closeRel(e1, sum, 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func closeRel(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	return d <= tol*(1+m)
}

// Property: adding a transfer never shrinks the makespan (work
// monotonicity under the greedy scheduler).
func TestScheduleMonotoneInWork(t *testing.T) {
	topo := NewBus(64)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		batch := randBatch(r, 1+r.Intn(10))
		base := ScheduleBatch(topo, batch).Makespan
		more := ScheduleBatch(topo, append(batch, randBatch(r, 1)...)).Makespan
		return more >= base-1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: on the bus, the makespan is exactly the serial sum of
// occupancies (one switch, full serialization).
func TestBusMakespanIsSerialSum(t *testing.T) {
	topo := NewBus(64)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		batch := randBatch(r, 1+r.Intn(12))
		s := ScheduleBatch(topo, batch)
		var sum float64
		for _, tr := range batch {
			sum += singleDur(topo, tr)
		}
		return closeRel(s.Makespan, sum, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: on every topology and a range of leaf counts (including ones
// that leave a partial switch group or grid row), every pair of distinct
// leaves is routable: the path is non-empty, every switch ID is in range,
// no switch repeats consecutively, and the route length is symmetric
// (len Path(a,b) == len Path(b,a) under deterministic minimal routing).
func TestPathValidityAllTopologies(t *testing.T) {
	for _, leaves := range []int{16, 64, 72, 100, 256} {
		for _, topo := range allTopos(t, leaves) {
			n := topo.SwitchCount()
			maxLen := n // a minimal deterministic route never revisits the fabric
			r := rand.New(rand.NewSource(int64(leaves)))
			check := func(src, dst int) {
				p := topo.Path(src, dst)
				q := topo.Path(dst, src)
				if src == dst {
					if len(p) != 0 {
						t.Fatalf("%s/%d: Path(%d,%d) = %v, want empty", topo.Name(), leaves, src, dst, p)
					}
					return
				}
				if len(p) == 0 {
					t.Fatalf("%s/%d: Path(%d,%d) unreachable", topo.Name(), leaves, src, dst)
				}
				if len(p) > maxLen {
					t.Fatalf("%s/%d: Path(%d,%d) = %d switches > %d", topo.Name(), leaves, src, dst, len(p), maxLen)
				}
				if len(p) != len(q) {
					t.Fatalf("%s/%d: asymmetric route %d<->%d: %v vs %v", topo.Name(), leaves, src, dst, p, q)
				}
				for i, s := range p {
					if s < 0 || s >= n {
						t.Fatalf("%s/%d: Path(%d,%d) switch %d out of range [0,%d)", topo.Name(), leaves, src, dst, s, n)
					}
					if i > 0 && p[i-1] == s {
						t.Fatalf("%s/%d: Path(%d,%d) repeats switch %d: %v", topo.Name(), leaves, src, dst, s, p)
					}
				}
			}
			// Exhaustive on small fabrics, sampled on large ones.
			if leaves <= 72 {
				for src := 0; src < leaves; src++ {
					for dst := 0; dst < leaves; dst++ {
						check(src, dst)
					}
				}
			} else {
				for i := 0; i < 2000; i++ {
					check(r.Intn(leaves), r.Intn(leaves))
				}
			}
		}
	}
}

// Property: on every fabric, a batch of same-switch-group transfers (all
// endpoints attached to one switch) never backpressures transfers on a
// disjoint group's switch — disjoint routes overlap fully.
func TestDisjointRoutesOverlap(t *testing.T) {
	for _, topo := range allTopos(t, 64) {
		if topo.Name() == "bus" {
			continue // one shared switch: everything serializes by design
		}
		batch := []Transfer{
			{Src: 0, Dst: 1, Words: 256}, // group 0 local
			{Src: 4, Dst: 5, Words: 256}, // group 1 local, disjoint switch
		}
		s := ScheduleBatch(topo, batch)
		single := ScheduleBatch(topo, batch[:1])
		if !closeRel(s.Makespan, single.Makespan, 1e-12) {
			t.Errorf("%s: disjoint local transfers serialized: batch %.3e vs single %.3e",
				topo.Name(), s.Makespan, single.Makespan)
		}
		if s.Backpressured != 0 {
			t.Errorf("%s: disjoint local transfers backpressured %d times", topo.Name(), s.Backpressured)
		}
	}
}

// Property: H-tree path lengths are symmetric in distance classes — blocks
// in the same fanout group have 1-switch paths; the path length never
// exceeds 2*depth - 1.
func TestHTreePathLengthBounds(t *testing.T) {
	h := NewHTree(256, 4)
	maxLen := 2*4 - 1 // depth 4 tree over 256 leaves
	f := func(a, b uint8) bool {
		src, dst := int(a), int(b)
		if src == dst {
			return true
		}
		p := h.Path(src, dst)
		if len(p) < 1 || len(p) > maxLen {
			return false
		}
		if src/4 == dst/4 && len(p) != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
