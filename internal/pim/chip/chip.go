// Package chip assembles memory blocks and tiles into the four Wave-PIM
// chip configurations of the evaluation (512 MB, 2 GB, 8 GB, 16 GB) and
// implements the Table 3 power model. A chip is blocks grouped into
// 256-block (32 MB) tiles, each tile with its own H-tree or Bus
// interconnect, plus a central controller and an ARM host (Section 4.1,
// Section 7.1).
package chip

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"wavepim/internal/params"
	"wavepim/internal/pim/intercon"
	"wavepim/internal/pim/xbar"
)

// InterconnectKind names the tile interconnect topology. It is a string
// so configs, JobSpecs, and CLI flags share one vocabulary — the set of
// valid names is intercon.Names(). The zero value selects the paper's
// default H-tree.
type InterconnectKind string

const (
	HTree     InterconnectKind = "htree"
	Bus       InterconnectKind = "bus"
	Mesh      InterconnectKind = "mesh"
	Torus     InterconnectKind = "torus"
	FlatFly   InterconnectKind = "flatfly"
	Dragonfly InterconnectKind = "dragonfly"
)

func (k InterconnectKind) String() string {
	if k == "" {
		return "htree"
	}
	return string(k)
}

// ParseInterconnect validates a wire/CLI topology name ("" means htree).
func ParseInterconnect(s string) (InterconnectKind, error) {
	if _, err := intercon.New(s, params.BlocksPerTile, intercon.Config{}); err != nil {
		return "", err
	}
	return InterconnectKind(s).normalize(), nil
}

func (k InterconnectKind) normalize() InterconnectKind {
	if k == "" {
		return HTree
	}
	return k
}

// Config describes one chip configuration.
type Config struct {
	Name          string
	CapacityBytes int64
	Interconnect  InterconnectKind
	Fanout        int // H-tree fanout (ignored for Bus)
}

// The four evaluation capacities (Table 2's "512MB, 2GB, 8GB, 16GB").
func Config512MB() Config {
	return Config{Name: "PIM-512MB", CapacityBytes: 512 << 20, Interconnect: HTree, Fanout: 4}
}
func Config2GB() Config {
	return Config{Name: "PIM-2GB", CapacityBytes: 2 << 30, Interconnect: HTree, Fanout: 4}
}
func Config8GB() Config {
	return Config{Name: "PIM-8GB", CapacityBytes: 8 << 30, Interconnect: HTree, Fanout: 4}
}
func Config16GB() Config {
	return Config{Name: "PIM-16GB", CapacityBytes: 16 << 30, Interconnect: HTree, Fanout: 4}
}

// AllConfigs returns the four evaluation configurations in ascending size.
func AllConfigs() []Config {
	return []Config{Config512MB(), Config2GB(), Config8GB(), Config16GB()}
}

// BlockBytes is the capacity of one 1 Mb block in bytes (128 KB).
const BlockBytes = params.BlockBits / 8

// NumBlocks is the total memory blocks on the chip.
func (c Config) NumBlocks() int { return int(c.CapacityBytes / BlockBytes) }

// NumTiles is the number of 256-block tiles.
func (c Config) NumTiles() int { return c.NumBlocks() / params.BlocksPerTile }

// MaxParallelRows is the chip-wide row parallelism (16M for 2 GB).
func (c Config) MaxParallelRows() int64 { return params.MaxParallelRows(c.CapacityBytes) }

// Validate checks the configuration invariants.
func (c Config) Validate() error {
	if c.CapacityBytes <= 0 || c.CapacityBytes%(int64(BlockBytes)*params.BlocksPerTile) != 0 {
		return fmt.Errorf("chip: capacity %d is not a whole number of 32MB tiles", c.CapacityBytes)
	}
	if k := c.Interconnect.normalize(); k == HTree && c.Fanout < 2 {
		return fmt.Errorf("chip: H-tree fanout %d < 2", c.Fanout)
	}
	if _, err := c.tileTopology(); err != nil {
		return err
	}
	return nil
}

// tileTopology builds one tile's interconnect from the configuration.
func (c Config) tileTopology() (intercon.Topology, error) {
	return intercon.New(string(c.Interconnect), params.BlocksPerTile, intercon.Config{Fanout: c.Fanout})
}

// ---------------------------------------------------------------------------
// Power model (Table 3)
// ---------------------------------------------------------------------------

// Power is the static power breakdown of a chip, mirroring Table 3's rows.
type Power struct {
	CrossbarArrayW float64 // one 1 Mb array
	SenseAmpW      float64 // per block
	DecoderW       float64 // per block
	MemoryBlockW   float64 // per block total
	TileMemoryW    float64 // 256 crossbar arrays
	TileSwitchW    float64 // interconnect switches of one tile
	TileW          float64 // tile total
	ControllerW    float64 // central controller
	HostW          float64 // CPU host
	TotalW         float64 // whole system
}

// PowerModel computes the Table 3 breakdown for a configuration. Table 3's
// "Tile Memory" row counts the 256 crossbar arrays (256 x 6.14 mW =
// 1.57 W); sense amps and decoders are reported per block but amortized
// into the same tile budget by the paper's rounding.
func PowerModel(c Config) Power {
	p := Power{
		CrossbarArrayW: params.PowerCrossbarArrayW,
		SenseAmpW:      params.PowerSenseAmpW,
		DecoderW:       params.PowerDecoderW,
		MemoryBlockW:   params.PowerMemoryBlockW,
		ControllerW:    params.PowerCentralCtrlW,
		HostW:          params.PowerCPUHostW,
	}
	p.TileMemoryW = params.PowerCrossbarArrayW * params.BlocksPerTile
	if topo, err := c.tileTopology(); err == nil {
		p.TileSwitchW = topo.LeakagePowerW()
	}
	p.TileW = p.TileMemoryW + p.TileSwitchW
	p.TotalW = float64(c.NumTiles())*p.TileW + p.ControllerW + p.HostW
	return p
}

// SystemPowerW returns the full platform power during a run: the chip's
// static power plus the 900 GB/s HBM2 off-chip memory (Section 7.1).
func SystemPowerW(c Config) float64 {
	return PowerModel(c).TotalW + params.OffChipDRAMPowerW
}

// ---------------------------------------------------------------------------
// Functional chip
// ---------------------------------------------------------------------------

// Chip is an instantiated (functional or timing) chip: lazily allocated
// blocks — a 16 GB chip has 131072 blocks, so cell arrays materialize only
// when touched — grouped into tiles that each own an interconnect. Block
// lookup is safe from concurrent goroutines (the sim engine's parallel
// functional execution resolves blocks from its worker pool); the blocks
// themselves are single-owner and must not be mutated concurrently.
type Chip struct {
	Config Config
	mu     sync.RWMutex
	blocks map[int]*xbar.Block
	topos  []intercon.Topology // one per tile

	// remap is the logical->physical indirection installed by
	// spare-block remapping: after a block fails uncorrectably, its
	// logical id resolves to a reserved spare. hasRemap keeps the
	// common no-remap case a single atomic load on the hot addressing
	// paths (TileOf is called per routed transfer).
	remap    map[int]int
	hasRemap atomic.Bool

	// hook, when set, runs on every newly materialized block while the
	// chip lock is held (the fault layer uses it to attach per-block
	// fault state race-free).
	hook func(*xbar.Block)
}

// New instantiates a chip.
func New(c Config) (*Chip, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	ch := &Chip{Config: c, blocks: make(map[int]*xbar.Block)}
	// Topologies are stateless routing tables, so every tile shares one
	// instance (a 16 GB chip has 512 tiles of identical shape).
	topo, err := c.tileTopology()
	if err != nil {
		return nil, err
	}
	ch.topos = make([]intercon.Topology, c.NumTiles())
	for i := range ch.topos {
		ch.topos[i] = topo
	}
	return ch, nil
}

// Block returns the block a logical id resolves to (through any remap),
// allocating it on first use.
func (ch *Chip) Block(id int) *xbar.Block {
	if id < 0 || id >= ch.Config.NumBlocks() {
		panic(fmt.Sprintf("chip: block %d out of range [0,%d)", id, ch.Config.NumBlocks()))
	}
	id = ch.Physical(id)
	ch.mu.RLock()
	b, ok := ch.blocks[id]
	ch.mu.RUnlock()
	if ok {
		return b
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if b, ok := ch.blocks[id]; ok {
		return b
	}
	b = xbar.New(id)
	if ch.hook != nil {
		ch.hook(b)
	}
	ch.blocks[id] = b
	return b
}

// Physical resolves a logical block id through the remap table.
func (ch *Chip) Physical(id int) int {
	if !ch.hasRemap.Load() {
		return id
	}
	ch.mu.RLock()
	defer ch.mu.RUnlock()
	if p, ok := ch.remap[id]; ok {
		return p
	}
	return id
}

// SetRemap redirects a logical block id to a physical spare. Subsequent
// Block/TileOf/LocalID calls on the logical id resolve to the spare.
func (ch *Chip) SetRemap(logical, physical int) {
	n := ch.Config.NumBlocks()
	if logical < 0 || logical >= n || physical < 0 || physical >= n {
		panic(fmt.Sprintf("chip: remap %d->%d out of range [0,%d)", logical, physical, n))
	}
	ch.mu.Lock()
	if ch.remap == nil {
		ch.remap = make(map[int]int)
	}
	ch.remap[logical] = physical
	ch.mu.Unlock()
	ch.hasRemap.Store(true)
}

// SetBlockHook installs a callback run on every newly materialized block
// (and immediately on already-materialized ones) under the chip lock.
func (ch *Chip) SetBlockHook(h func(*xbar.Block)) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.hook = h
	if h != nil {
		for _, b := range ch.blocks {
			h(b)
		}
	}
}

// TileOf returns the tile index of a (logical) block.
func (ch *Chip) TileOf(blockID int) int { return ch.Physical(blockID) / params.BlocksPerTile }

// LocalID returns a block's index within its tile.
func (ch *Chip) LocalID(blockID int) int { return ch.Physical(blockID) % params.BlocksPerTile }

// Topology returns the interconnect of a tile.
func (ch *Chip) Topology(tile int) intercon.Topology { return ch.topos[tile] }

// AllocatedBlocks returns how many blocks have been materialized.
func (ch *Chip) AllocatedBlocks() int {
	ch.mu.RLock()
	defer ch.mu.RUnlock()
	return len(ch.blocks)
}

// TotalBlockStats sums the stats of all materialized blocks. Blocks are
// visited in sorted id order so the float accumulations (BusySec, EnergyJ)
// are reproducible run-to-run — map order must never leak into results.
func (ch *Chip) TotalBlockStats() xbar.Stats {
	ch.mu.RLock()
	defer ch.mu.RUnlock()
	ids := make([]int, 0, len(ch.blocks))
	for id := range ch.blocks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var s xbar.Stats
	for _, id := range ids {
		s.Add(ch.blocks[id].Stats)
	}
	return s
}
