package chip

import (
	"math"
	"testing"

	"wavepim/internal/params"
)

func TestConfigGeometry(t *testing.T) {
	cases := []struct {
		cfg    Config
		blocks int
		tiles  int
	}{
		{Config512MB(), 4096, 16},
		{Config2GB(), 16384, 64},
		{Config8GB(), 65536, 256},
		{Config16GB(), 131072, 512},
	}
	for _, c := range cases {
		if got := c.cfg.NumBlocks(); got != c.blocks {
			t.Errorf("%s: %d blocks, want %d", c.cfg.Name, got, c.blocks)
		}
		if got := c.cfg.NumTiles(); got != c.tiles {
			t.Errorf("%s: %d tiles, want %d", c.cfg.Name, got, c.tiles)
		}
		if err := c.cfg.Validate(); err != nil {
			t.Errorf("%s: %v", c.cfg.Name, err)
		}
	}
}

func TestMaxParallelRows2GB(t *testing.T) {
	// Section 7.1: "the maximum parallelism (2GB/1,024b = 16M)".
	if got := Config2GB().MaxParallelRows(); got != 16<<20 {
		t.Errorf("2GB parallel rows = %d, want 16M", got)
	}
}

func TestMixedThroughputMatchesTable2(t *testing.T) {
	// Table 2 lists the 2GB PIM throughput as ~7.25 TFLOP/s for the 50/50
	// add/mul mix (the paper's "16M" rows are decimal; ours are binary
	// 16.78M, giving 7.63 TFLOP/s — within 6%).
	got := params.MixedThroughputFLOPS(2 << 30)
	if got < 7.0e12 || got > 7.7e12 {
		t.Errorf("2GB mixed throughput %.3g, want ~7.25 TFLOP/s", got)
	}
}

func TestPowerModelMatchesTable3(t *testing.T) {
	// 2 GB chip, H-tree: Table 3 totals 115.02 W; our component-wise sum
	// must land within 3% (the paper's own rows round inconsistently: 64 x
	// 1.68 + 6.41 + 3.06 = 116.99, already 1.7% from its printed total).
	p := PowerModel(Config2GB())
	if rel := math.Abs(p.TotalW-params.PowerChip2GBHTreeW) / params.PowerChip2GBHTreeW; rel > 0.03 {
		t.Errorf("2GB H-tree power %.2f W, want within 3%% of %.2f W", p.TotalW, params.PowerChip2GBHTreeW)
	}
	// Tile memory = 256 crossbar arrays = 1.57 W.
	if math.Abs(p.TileMemoryW-params.PowerTileMemoryW) > 0.01 {
		t.Errorf("tile memory %.4f W, want %.2f W", p.TileMemoryW, params.PowerTileMemoryW)
	}
	// Tile totals: 1.68 W (H-tree).
	if math.Abs(p.TileW-params.PowerTileHTreeW) > 0.01 {
		t.Errorf("H-tree tile %.4f W, want %.2f W", p.TileW, params.PowerTileHTreeW)
	}

	bus := Config2GB()
	bus.Interconnect = Bus
	pb := PowerModel(bus)
	if rel := math.Abs(pb.TotalW-params.PowerChip2GBBusW) / params.PowerChip2GBBusW; rel > 0.03 {
		t.Errorf("2GB bus power %.2f W, want within 3%% of %.2f W", pb.TotalW, params.PowerChip2GBBusW)
	}
	if math.Abs(pb.TileW-params.PowerTileBusW) > 0.01 {
		t.Errorf("bus tile %.4f W, want %.2f W", pb.TileW, params.PowerTileBusW)
	}
	if pb.TotalW >= p.TotalW {
		t.Error("bus chip must draw less static power than H-tree chip")
	}
}

func TestMemoryBlockPowerComponents(t *testing.T) {
	// Table 3: crossbar 6.14 + sense amps 2.38 + decoder 0.31 = 8.83 mW.
	sum := params.PowerCrossbarArrayW + params.PowerSenseAmpW + params.PowerDecoderW
	if math.Abs(sum-params.PowerMemoryBlockW) > 1e-9 {
		t.Errorf("block components sum %.5f W, want %.5f W", sum, params.PowerMemoryBlockW)
	}
}

func TestPowerScalesWithCapacity(t *testing.T) {
	var prev float64
	for _, cfg := range AllConfigs() {
		p := PowerModel(cfg)
		if p.TotalW <= prev {
			t.Errorf("%s: power %.2f W should exceed previous %.2f W", cfg.Name, p.TotalW, prev)
		}
		prev = p.TotalW
	}
}

func TestSystemPowerIncludesDRAM(t *testing.T) {
	cfg := Config2GB()
	if got := SystemPowerW(cfg) - PowerModel(cfg).TotalW; math.Abs(got-params.OffChipDRAMPowerW) > 1e-9 {
		t.Errorf("system power DRAM share %.2f W, want %.2f W", got, params.OffChipDRAMPowerW)
	}
}

func TestChipLazyBlocks(t *testing.T) {
	ch, err := New(Config16GB())
	if err != nil {
		t.Fatal(err)
	}
	if ch.AllocatedBlocks() != 0 {
		t.Error("no blocks should be allocated up front")
	}
	b := ch.Block(100000)
	b.SetFloat(0, 0, 1.5)
	if ch.AllocatedBlocks() != 1 {
		t.Errorf("allocated %d blocks, want 1", ch.AllocatedBlocks())
	}
	if ch.Block(100000).GetFloat(0, 0) != 1.5 {
		t.Error("block identity not stable")
	}
}

func TestTileMapping(t *testing.T) {
	ch, err := New(Config2GB())
	if err != nil {
		t.Fatal(err)
	}
	if ch.TileOf(0) != 0 || ch.TileOf(255) != 0 || ch.TileOf(256) != 1 {
		t.Error("TileOf wrong")
	}
	if ch.LocalID(256) != 0 || ch.LocalID(511) != 255 {
		t.Error("LocalID wrong")
	}
	if ch.Topology(0).Leaves() != params.BlocksPerTile {
		t.Error("tile topology leaf count wrong")
	}
}

func TestChipBlockOutOfRangePanics(t *testing.T) {
	ch, _ := New(Config512MB())
	defer func() {
		if recover() == nil {
			t.Error("out-of-range block access did not panic")
		}
	}()
	ch.Block(4096)
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := Config{Name: "x", CapacityBytes: 1000, Interconnect: HTree, Fanout: 4}
	if bad.Validate() == nil {
		t.Error("non-tile-aligned capacity should fail validation")
	}
	bad2 := Config2GB()
	bad2.Fanout = 1
	if bad2.Validate() == nil {
		t.Error("fanout 1 should fail validation")
	}
	if _, err := New(bad); err == nil {
		t.Error("New should propagate validation errors")
	}
}

func TestTotalBlockStats(t *testing.T) {
	ch, _ := New(Config512MB())
	ch.Block(0).Arith(false, 0, 10, 2, 0, 1)
	ch.Block(5).Arith(true, 0, 20, 2, 0, 1)
	s := ch.TotalBlockStats()
	if s.AddOps != 10 || s.MulOps != 20 {
		t.Errorf("total stats %+v", s)
	}
}

func TestInterconnectKindString(t *testing.T) {
	if HTree.String() != "htree" || Bus.String() != "bus" {
		t.Error("kind strings wrong")
	}
}
