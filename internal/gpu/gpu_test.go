package gpu

import (
	"math"
	"testing"

	"wavepim/internal/dg/opcount"
	"wavepim/internal/hostcpu"
	"wavepim/internal/params"
)

// Section 3.1's published GPU-vs-CPU speedups, the model's calibration
// targets: the reproduction must land within 2% on every cell.
func TestSection31SpeedupsReproduced(t *testing.T) {
	paper := map[int][3]float64{
		4: {94.35, 100.25, 123.38},
		5: {131.10, 223.95, 369.05},
	}
	specs := []params.GPUSpec{params.GTX1080Ti, params.TeslaP100, params.TeslaV100}
	for ref, want := range paper {
		b := opcount.Benchmark{Eq: opcount.Acoustic, Refinement: ref}
		cpu := hostcpu.BaselineRunTime(b, params.TimeStepsPerRun)
		for i, spec := range specs {
			m := Model{Spec: spec, Impl: Unfused}
			got := cpu / m.RunTime(b, params.TimeStepsPerRun)
			if rel := math.Abs(got-want[i]) / want[i]; rel > 0.02 {
				t.Errorf("level %d %s: speedup %.2f, paper %.2f (off %.1f%%)",
					ref, spec.Name, got, want[i], rel*100)
			}
		}
	}
}

// The paper's core profiling finding: the GPU runs are memory-bound, "even
// for Tesla V100 GPUs, with 900GB/s of memory bandwidth".
func TestGPUsAreMemoryBound(t *testing.T) {
	for _, b := range opcount.AllBenchmarks() {
		for _, m := range Baselines() {
			if !m.MemoryBound(b) {
				t.Errorf("%s on %s should be memory-bandwidth-bound", m.Name(), b.Name())
			}
		}
	}
}

// Fused is faster than unfused on every device and benchmark (it exists to
// "minimize the data movements").
func TestFusedBeatsUnfused(t *testing.T) {
	for _, b := range opcount.AllBenchmarks() {
		for _, spec := range []params.GPUSpec{params.GTX1080Ti, params.TeslaP100, params.TeslaV100} {
			u := Model{Spec: spec, Impl: Unfused}.RunTime(b, 64)
			f := Model{Spec: spec, Impl: Fused}.RunTime(b, 64)
			if f >= u {
				t.Errorf("%s %s: fused %.3g >= unfused %.3g", spec.Name, b.Name(), f, u)
			}
		}
	}
}

// Device ordering: V100 <= P100 <= 1080Ti in run time on every benchmark.
func TestDeviceOrdering(t *testing.T) {
	for _, b := range opcount.AllBenchmarks() {
		ti := Model{Spec: params.GTX1080Ti, Impl: Unfused}.RunTime(b, 64)
		p := Model{Spec: params.TeslaP100, Impl: Unfused}.RunTime(b, 64)
		v := Model{Spec: params.TeslaV100, Impl: Unfused}.RunTime(b, 64)
		if !(v <= p && p <= ti) {
			t.Errorf("%s: ordering violated: V100=%.3g P100=%.3g 1080Ti=%.3g", b.Name(), v, p, ti)
		}
	}
}

// The V100's advantage over the 1080Ti grows with refinement level
// (1.31x -> 2.82x in the paper).
func TestV100AdvantageGrowsWithSize(t *testing.T) {
	adv := func(ref int) float64 {
		b := opcount.Benchmark{Eq: opcount.Acoustic, Refinement: ref}
		ti := Model{Spec: params.GTX1080Ti, Impl: Unfused}.RunTime(b, 64)
		v := Model{Spec: params.TeslaV100, Impl: Unfused}.RunTime(b, 64)
		return ti / v
	}
	a4, a5 := adv(4), adv(5)
	if a5 <= a4 {
		t.Errorf("V100 advantage should grow: level4=%.2f level5=%.2f", a4, a5)
	}
	if math.Abs(a4-1.308) > 0.05 || math.Abs(a5-2.815) > 0.1 {
		t.Errorf("V100/1080Ti advantages %.3f, %.3f; paper: 1.308, 2.815", a4, a5)
	}
}

// Energy ordering: energy grows with benchmark size on a fixed device.
func TestEnergyScalesWithWork(t *testing.T) {
	m := Model{Spec: params.TeslaV100, Impl: Fused}
	b4 := opcount.Benchmark{Eq: opcount.Acoustic, Refinement: 4}
	b5 := opcount.Benchmark{Eq: opcount.Acoustic, Refinement: 5}
	if m.Energy(b5, 64) <= m.Energy(b4, 64) {
		t.Error("level-5 run must cost more energy than level-4")
	}
	if m.Energy(b4, 64) <= 0 {
		t.Error("energy must be positive")
	}
}

// Kernel-level behaviour: Integration is memory-bound with low arithmetic
// intensity (it "does not scale so well"); Flux carries the divergence
// penalty (it is "the most inefficient kernel").
func TestKernelTimes(t *testing.T) {
	b := opcount.Benchmark{Eq: opcount.Acoustic, Refinement: 4}
	m := Model{Spec: params.TeslaV100, Impl: Unfused}
	for k := opcount.Kernel(0); k < opcount.NumKernels; k++ {
		if m.KernelTime(b, k) <= m.Spec.LaunchOverhead {
			t.Errorf("kernel %v time not above launch overhead", k)
		}
	}
	// Integration moves the most bytes per launch and so takes longest.
	integ := m.KernelTime(b, opcount.KernelIntegration)
	flux := m.KernelTime(b, opcount.KernelFlux)
	if integ <= flux {
		t.Errorf("Integration (%.3g) should exceed Flux (%.3g): it is memory-dominated", integ, flux)
	}
}

func TestModelNames(t *testing.T) {
	if got := (Model{Spec: params.GTX1080Ti, Impl: Unfused}).Name(); got != "Unfused-1080Ti" {
		t.Errorf("name %q", got)
	}
	if got := (Model{Spec: params.TeslaV100, Impl: Fused}).Name(); got != "Fused-V100" {
		t.Errorf("name %q", got)
	}
	if len(Baselines()) != 6 {
		t.Error("want 6 GPU baselines")
	}
}

func TestRunTimeLinearInSteps(t *testing.T) {
	b := opcount.Benchmark{Eq: opcount.Acoustic, Refinement: 4}
	m := Model{Spec: params.TeslaP100, Impl: Unfused}
	if r := m.RunTime(b, 200) / m.RunTime(b, 100); math.Abs(r-2) > 1e-9 {
		t.Errorf("run time not linear in steps: ratio %g", r)
	}
}
