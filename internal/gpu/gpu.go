// Package gpu is an analytic roofline model of the paper's three GPU
// baselines (GTX 1080Ti, Tesla P100, Tesla V100) running the unfused and
// fused CUDA implementations of the dG wave solver (Section 7.2).
//
// The paper measured real hardware; this model substitutes for it (see
// DESIGN.md). Its structure follows the paper's own profiling narrative:
// every kernel is bounded by max(memory time, compute time) plus launch
// overhead; the Volume kernel scales with SMs until bandwidth-bound, the
// Integration kernel is dominated by memory accesses, and the Flux kernel
// suffers control divergence (Section 3.1). Per-kernel byte and FLOP
// counts come from internal/dg/opcount (derived from the discretization);
// the remaining efficiency constants are calibrated against the paper's
// published GPU-vs-CPU speedups and are documented in EXPERIMENTS.md.
package gpu

import (
	"fmt"

	"wavepim/internal/dg/opcount"
	"wavepim/internal/params"
)

// Impl selects the CUDA implementation variant of Section 7.2.
type Impl int

const (
	// Unfused launches Volume, Flux and Integration as separate kernels;
	// it is the evaluation's normalization baseline on the GTX 1080Ti.
	Unfused Impl = iota
	// Fused merges Volume and Flux into a single kernel "to minimize the
	// data movements" and gives each thread one node for the whole kernel.
	Fused
)

func (i Impl) String() string {
	if i == Unfused {
		return "Unfused"
	}
	return "Fused"
}

// Calibration constants for the memory system. The products of
// amplification and efficiency are fitted so the model lands on the
// paper's absolute scale (inferred from Figure 13's ~300us pipelined PIM
// stage and the published PIM-vs-GPU ratios); the per-implementation and
// per-device differences implement the paper's qualitative findings.
const (
	// MemAmplification multiplies ideal DRAM traffic: uncoalesced
	// neighbor-table walks, re-fetched constants and partial cache-line
	// use in a real dG code.
	MemAmpUnfused = 6.0
	MemAmpFused   = 2.1
	// FluxDivergence serializes the Flux kernel's compute lanes.
	FluxDivergenceUnfused = 2.6
	FluxDivergenceFused   = 1.8
	// Compute efficiencies per kernel class.
	VolumeComputeEff = 0.55
	IntegComputeEff  = 0.45
	FluxComputeEff   = 0.20
	// BoardUtilization converts TDP into average draw while kernels run.
	BoardUtilization = 0.62
	// GDDR5X loses efficiency on large irregular models (row-buffer
	// conflicts), unlike HBM2's many independent channels. This is what
	// lets the V100's advantage over the 1080Ti exceed their raw 1.86x
	// bandwidth ratio at refinement 5, as the paper measures.
	GDDRLargeModelPenalty = 0.6
	GDDRPenaltyHalfSat    = 16384.0
)

// deviceMem returns the device's saturated achievable-bandwidth fraction
// and its half-saturation model size. The pairs are fitted jointly (two
// equations per device) against Section 3.1's published GPU-vs-CPU
// speedups at both refinement levels — V100's advantage over the 1080Ti
// grows from 1.31x at level 4 to 2.82x at level 5 because the wide HBM2
// devices need far more resident parallelism to saturate.
func deviceMem(spec params.GPUSpec) (beff, halfSat float64) {
	switch spec.Name {
	case "Tesla V100":
		return 0.486, 4328
	case "Tesla P100":
		return 0.343, 1760
	default: // GTX 1080Ti
		return 0.40, 260
	}
}

// Model is one (device, implementation) pair.
type Model struct {
	Spec params.GPUSpec
	Impl Impl
}

// Name renders the evaluation's labels, e.g. "Unfused-1080Ti".
func (m Model) Name() string {
	short := map[string]string{
		"GTX 1080Ti": "1080Ti", "Tesla P100": "P100", "Tesla V100": "V100",
	}[m.Spec.Name]
	return fmt.Sprintf("%s-%s", m.Impl, short)
}

// Baselines returns the six GPU variants of Figures 11-12.
func Baselines() []Model {
	var out []Model
	for _, impl := range []Impl{Unfused, Fused} {
		for _, spec := range []params.GPUSpec{params.GTX1080Ti, params.TeslaP100, params.TeslaV100} {
			out = append(out, Model{Spec: spec, Impl: impl})
		}
	}
	return out
}

// effBandwidth returns the achieved DRAM bandwidth for a model size.
func (m Model) effBandwidth(elements int) float64 {
	beff, halfSat := deviceMem(m.Spec)
	sat := float64(elements) / (float64(elements) + halfSat)
	bw := m.Spec.MemoryBWBps * beff * sat
	if m.Spec.MemoryType == "GDDR5X" {
		pen := 1 + GDDRLargeModelPenalty*float64(elements)/(float64(elements)+GDDRPenaltyHalfSat)
		bw /= pen
	}
	return bw
}

// KernelTime returns the duration of one launch of kernel k.
func (m Model) KernelTime(b opcount.Benchmark, k opcount.Kernel) float64 {
	c := opcount.PerLaunch(b, k)
	amp, div := MemAmpUnfused, FluxDivergenceUnfused
	if m.Impl == Fused {
		amp, div = MemAmpFused, FluxDivergenceFused
	}
	memT := float64(c.Bytes()) * amp / m.effBandwidth(b.NumElements())
	var eff, mul float64
	switch k {
	case opcount.KernelVolume:
		eff, mul = VolumeComputeEff, 1
	case opcount.KernelFlux:
		eff, mul = FluxComputeEff, div
	default:
		eff, mul = IntegComputeEff, 1
	}
	cmpT := float64(c.FLOPs+8*c.SpecialOps) * mul / (m.Spec.PeakFP32FLOPS * eff)
	t := memT
	if cmpT > t {
		t = cmpT
	}
	return t + m.Spec.LaunchOverhead
}

// StageTime returns one RK-stage's duration (one launch of each kernel;
// the fused implementation merges Volume and Flux into one launch and
// skips the intermediate contribution round-trip).
func (m Model) StageTime(b opcount.Benchmark) float64 {
	if m.Impl == Fused {
		vol := opcount.PerLaunch(b, opcount.KernelVolume)
		flux := opcount.PerLaunch(b, opcount.KernelFlux)
		merged := vol.Add(flux)
		// Fusion avoids writing and re-reading the contributions between
		// the two kernels.
		saved := vol.WriteBytes
		memT := float64(merged.Bytes()-2*saved) * MemAmpFused / m.effBandwidth(b.NumElements())
		cmpT := (float64(vol.FLOPs)/VolumeComputeEff +
			float64(flux.FLOPs+8*flux.SpecialOps)*FluxDivergenceFused/FluxComputeEff) /
			m.Spec.PeakFP32FLOPS
		t := memT
		if cmpT > t {
			t = cmpT
		}
		return t + m.Spec.LaunchOverhead + m.KernelTime(b, opcount.KernelIntegration)
	}
	var t float64
	for k := opcount.Kernel(0); k < opcount.NumKernels; k++ {
		t += m.KernelTime(b, k)
	}
	return t
}

// RunTime returns the full simulation duration: five stages per time-step
// (Section 7.2: "each kernel is launched five times" per step).
func (m Model) RunTime(b opcount.Benchmark, timeSteps int) float64 {
	return m.StageTime(b) * float64(params.IntegrationStagesPerStep) * float64(timeSteps)
}

// Energy returns the run's energy: board power at kernel utilization plus
// the host share, times the run duration (the paper measures both with
// nvidia-smi and RAPL).
func (m Model) Energy(b opcount.Benchmark, timeSteps int) float64 {
	t := m.RunTime(b, timeSteps)
	return (m.Spec.BoardPowerW*BoardUtilization + m.Spec.HostPowerW) * t
}

// MemoryBound reports whether the benchmark is bandwidth-bound on this
// model (the paper: "the GPU implementation ... turns out to be bounded by
// memory bandwidth, even for Tesla V100 GPUs").
func (m Model) MemoryBound(b opcount.Benchmark) bool {
	for k := opcount.Kernel(0); k < opcount.NumKernels; k++ {
		c := opcount.PerLaunch(b, k)
		amp := MemAmpUnfused
		if m.Impl == Fused {
			amp = MemAmpFused
		}
		memT := float64(c.Bytes()) * amp / m.effBandwidth(b.NumElements())
		if kt := m.KernelTime(b, k) - m.Spec.LaunchOverhead; kt > memT+1e-12 {
			return false
		}
	}
	return true
}
