package dg

import (
	"fmt"
	"math"
	"time"

	"wavepim/internal/material"
	"wavepim/internal/mesh"
	"wavepim/internal/obs"
)

// Maxwell's equations are the paper's third wave system (Section 2.1: "One
// may observe structural similarities between Eq. (1), Eq. (2), and the
// Maxwell equations ... successful strategies for efficient computation of
// the acoustic wave motion can also be applied to the elastic and
// electromagnetic waves"). This file implements the extension: the
// source-free Maxwell curl equations in a linear dielectric,
//
//	dE/dt =  (1/eps) curl H
//	dH/dt = -(1/mu)  curl E
//
// six variables per node, discretized with the same nodal dG-SEM
// machinery. Across every face, the tangential field components decouple
// into two acoustic-like characteristic pairs with impedance
// eta = sqrt(mu/eps), so the central and Riemann flux solvers carry over
// directly — which is exactly the reuse the paper's claim rests on.

// MaxwellState holds the six electromagnetic variables.
type MaxwellState struct {
	E [3][]float64
	H [3][]float64
}

// NewMaxwellState allocates a zeroed state.
func NewMaxwellState(m *mesh.Mesh) *MaxwellState {
	n := m.NumElem * m.NodesPerEl
	s := &MaxwellState{}
	for d := 0; d < 3; d++ {
		s.E[d] = make([]float64, n)
		s.H[d] = make([]float64, n)
	}
	return s
}

// Scale multiplies every variable by a.
func (s *MaxwellState) Scale(a float64) {
	for d := 0; d < 3; d++ {
		scale(s.E[d], a)
		scale(s.H[d], a)
	}
}

// AddScaled accumulates s += a*t.
func (s *MaxwellState) AddScaled(a float64, t *MaxwellState) {
	for d := 0; d < 3; d++ {
		addScaled(s.E[d], a, t.E[d])
		addScaled(s.H[d], a, t.H[d])
	}
}

// Copy duplicates the state.
func (s *MaxwellState) Copy() *MaxwellState {
	c := &MaxwellState{}
	for d := 0; d < 3; d++ {
		c.E[d] = append([]float64(nil), s.E[d]...)
		c.H[d] = append([]float64(nil), s.H[d]...)
	}
	return c
}

// MaxwellSolver evaluates the semi-discrete Maxwell RHS.
type MaxwellSolver struct {
	Op   *Operator
	Mat  material.Dielectric
	Flux FluxType
	// Workers > 1 runs the RHS with that many goroutines (elements are
	// independent; see parallel.go). Results are identical to serial.
	Workers int
	// Obs, when non-nil, records per-stage RHS timings and parallel-range
	// utilization (see parallel.go). Nil keeps the uninstrumented path.
	Obs *obs.Sink
	// Tuning controls the adaptive serial/parallel dispatch of RHSParallel
	// (see parallel.go). The zero value uses the measured defaults.
	Tuning ParallelTuning

	scratch    [3][]float64
	parScratch []maxwellScratch
}

// NewMaxwellSolver builds the solver for a uniform dielectric.
func NewMaxwellSolver(m *mesh.Mesh, mat material.Dielectric, flux FluxType) *MaxwellSolver {
	s := &MaxwellSolver{Op: NewOperator(m), Mat: mat, Flux: flux}
	for i := range s.scratch {
		s.scratch[i] = make([]float64, m.NodesPerEl)
	}
	return s
}

// cyc returns the cyclic successor pair of axis a: x->(y,z), y->(z,x),
// z->(x,y).
func cyc(a int) (b, c int) { return (a + 1) % 3, (a + 2) % 3 }

// RHS computes Volume + Flux into rhs.
func (s *MaxwellSolver) RHS(q, rhs *MaxwellState) {
	if s.Workers > 1 {
		s.RHSParallel(q, rhs, s.Workers)
		return
	}
	s.rhsSerial(q, rhs)
}

// rhsSerial is the unpooled RHS body, shared by RHS and the adaptive
// below-threshold fallback in RHSParallel.
func (s *MaxwellSolver) rhsSerial(q, rhs *MaxwellState) {
	if s.Obs != nil {
		defer observeSerialRHS(s.Obs, "maxwell", time.Now())
	}
	s.VolumeKernel(q, rhs)
	s.FluxKernel(q, rhs)
}

// VolumeKernel computes the element-local curls.
func (s *MaxwellSolver) VolumeKernel(q, rhs *MaxwellState) {
	for e := 0; e < s.Op.M.NumElem; e++ {
		s.volumeElem(q, rhs, e, s.scratch[0], s.scratch[1])
	}
}

// volumeElem computes one element's curls with caller-owned scratch
// (shared by the serial and parallel paths).
func (s *MaxwellSolver) volumeElem(q, rhs *MaxwellState, e int, da, db []float64) {
	m := s.Op.M
	nn := m.NodesPerEl
	invEps, invMu := 1/s.Mat.Eps, 1/s.Mat.Mu
	off := e * nn
	for a := 0; a < 3; a++ {
		b, c := cyc(a)
		// (curl H)_a = dH_c/db - dH_b/dc
		s.Op.Diff(q.H[c][off:off+nn], mesh.Axis(b), da)
		s.Op.Diff(q.H[b][off:off+nn], mesh.Axis(c), db)
		for n := 0; n < nn; n++ {
			rhs.E[a][off+n] = invEps * (da[n] - db[n])
		}
		// (curl E)_a likewise, with the opposite sign for H.
		s.Op.Diff(q.E[c][off:off+nn], mesh.Axis(b), da)
		s.Op.Diff(q.E[b][off:off+nn], mesh.Axis(c), db)
		for n := 0; n < nn; n++ {
			rhs.H[a][off+n] = -invMu * (da[n] - db[n])
		}
	}
}

// FluxKernel reconciles the interface values. For a face with normal
// n = sign * e_a and cyclic pair (b, c), the tangential components split
// into two independent acoustic-analogue channels:
//
//	channel 1: p := E_b, v := H_c, kappa := 1/eps, rho := mu
//	channel 2: p := E_c, v := -H_b (same material mapping)
//
// each with impedance eta = sqrt(mu/eps); the acoustic interface formulas
// then apply verbatim.
func (s *MaxwellSolver) FluxKernel(q, rhs *MaxwellState) {
	m := s.Op.M
	for e := 0; e < m.NumElem; e++ {
		for f := mesh.Face(0); f < mesh.NumFaces; f++ {
			s.fluxFace(q, rhs, e, f)
		}
	}
}

// FluxKernelFace exposes per-face computation for schedule tests.
func (s *MaxwellSolver) FluxKernelFace(q, rhs *MaxwellState, e int, f mesh.Face) {
	s.fluxFace(q, rhs, e, f)
}

func (s *MaxwellSolver) fluxFace(q, rhs *MaxwellState, e int, f mesh.Face) {
	m := s.Op.M
	if !m.Periodic {
		panic("dg: Maxwell solver currently supports periodic meshes")
	}
	nn := m.NodesPerEl
	off := e * nn
	a := int(f.Axis())
	b, c := cyc(a)
	sign := float64(f.Sign())
	lift := s.Op.Lift()
	eta := s.Mat.Impedance()
	invEps, invMu := 1/s.Mat.Eps, 1/s.Mat.Mu

	nid, _ := m.Neighbor(e, f)
	nbOff := nid * nn
	myNodes := s.Op.FaceNodes(f)
	nbNodes := s.Op.FaceNodes(f.Opposite())

	for g, n := range myNodes {
		// Channel 1: (E_b, H_c).
		s.channel(q.E[b], q.E[b], q.H[c], q.H[c], +1, rhs.E[b], rhs.H[c],
			off, nbOff, n, nbNodes[g], sign, lift, eta, invEps, invMu)
		// Channel 2: (E_c, -H_b).
		s.channel(q.E[c], q.E[c], q.H[b], q.H[b], -1, rhs.E[c], rhs.H[b],
			off, nbOff, n, nbNodes[g], sign, lift, eta, invEps, invMu)
	}
}

// channel applies the acoustic-analogue interface correction for one
// tangential pair. vSign folds the Levi-Civita orientation of the pair.
func (s *MaxwellSolver) channel(pSelf, pNbr, vSelf, vNbr []float64, vSign float64,
	pOut, vOut []float64, off, nbOff, n, nbN int, sign, lift, eta, invEps, invMu float64) {
	pm := pSelf[off+n]
	pp := pNbr[nbOff+nbN]
	vnm := sign * vSign * vSelf[off+n]
	vnp := sign * vSign * vNbr[nbOff+nbN]
	var pStar, vnStar float64
	switch s.Flux {
	case CentralFlux:
		pStar = (pm + pp) / 2
		vnStar = (vnm + vnp) / 2
	case RiemannFlux:
		pStar = (pm+pp)/2 + eta/2*(vnm-vnp)
		vnStar = (vnm+vnp)/2 + (pm-pp)/(2*eta)
	}
	pOut[off+n] += lift * invEps * (vnm - vnStar)
	vOut[off+n] += vSign * lift * invMu * (pm - pStar) * sign
}

// MaxStableDt returns the CFL-limited time step (wave speed 1/sqrt(eps mu)).
func (s *MaxwellSolver) MaxStableDt(cfl float64) float64 {
	m := s.Op.M
	minDx := (m.Rule.Points[1] - m.Rule.Points[0]) * m.H / 2
	return cfl * minDx / s.Mat.LightSpeed()
}

// Energy returns the electromagnetic energy Int( eps|E|^2 + mu|H|^2 )/2.
func (s *MaxwellSolver) Energy(q *MaxwellState) float64 {
	m := s.Op.M
	nn := m.NodesPerEl
	u := s.scratch[2]
	var total float64
	for e := 0; e < m.NumElem; e++ {
		off := e * nn
		for n := 0; n < nn; n++ {
			var e2, h2 float64
			for d := 0; d < 3; d++ {
				e2 += q.E[d][off+n] * q.E[d][off+n]
				h2 += q.H[d][off+n] * q.H[d][off+n]
			}
			u[n] = (s.Mat.Eps*e2 + s.Mat.Mu*h2) / 2
		}
		total += s.Op.IntegrateElement(u)
	}
	return total
}

// MaxwellIntegrator advances a Maxwell state with the shared LSRK scheme.
type MaxwellIntegrator struct {
	Solver *MaxwellSolver
	aux    *MaxwellState
	contr  *MaxwellState
}

// NewMaxwellIntegrator allocates the integrator.
func NewMaxwellIntegrator(s *MaxwellSolver) *MaxwellIntegrator {
	return &MaxwellIntegrator{
		Solver: s,
		aux:    NewMaxwellState(s.Op.M),
		contr:  NewMaxwellState(s.Op.M),
	}
}

// Step advances q by dt in five stages.
func (it *MaxwellIntegrator) Step(q *MaxwellState, dt float64) {
	for s := 0; s < NumStages; s++ {
		it.Solver.RHS(q, it.contr)
		it.aux.Scale(LSRK5A[s])
		it.aux.AddScaled(dt, it.contr)
		q.AddScaled(LSRK5B[s], it.aux)
	}
}

// Run advances n steps.
func (it *MaxwellIntegrator) Run(q *MaxwellState, dt float64, n int) {
	for i := 0; i < n; i++ {
		it.Step(q, dt)
	}
}

// PlaneWaveEM initializes a +x-propagating plane wave with E along y and
// H along z: Ey = sin(2 pi k x), Hz = Ey / eta.
func PlaneWaveEM(m *mesh.Mesh, mat material.Dielectric, k int, q *MaxwellState) {
	eta := mat.Impedance()
	nn := m.NodesPerEl
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < nn; n++ {
			x, _, _ := m.NodePosition(e, n)
			ey := math.Sin(2 * math.Pi * float64(k) * x)
			q.E[1][e*nn+n] = ey
			q.H[2][e*nn+n] = ey / eta
		}
	}
}

// PlaneWaveEMAt is the analytic Ey at (x, t).
func PlaneWaveEMAt(mat material.Dielectric, k int, x, t float64) float64 {
	return math.Sin(2 * math.Pi * float64(k) * (x - mat.LightSpeed()*t))
}

var _ = fmt.Sprintf
