package dg

import (
	"fmt"
	"math"
	"time"

	"wavepim/internal/material"
	"wavepim/internal/mesh"
	"wavepim/internal/obs"
)

// Stress component indices: the symmetric stress tensor is stored in Voigt
// order. The elastic system has nine unknown variables per node
// (Section 2.1: "the elastic wave equation has nine variables"):
// six stress components plus three velocities.
const (
	SXX = iota
	SYY
	SZZ
	SXY
	SXZ
	SYZ
	NumStress
)

// ElasticState holds the nine unknown variables of the elastic system.
type ElasticState struct {
	S [NumStress][]float64 // symmetric stress tensor, Voigt order
	V [3][]float64         // velocity
}

// NewElasticState allocates a zeroed state for the mesh.
func NewElasticState(m *mesh.Mesh) *ElasticState {
	n := m.NumElem * m.NodesPerEl
	s := &ElasticState{}
	for c := range s.S {
		s.S[c] = make([]float64, n)
	}
	for d := range s.V {
		s.V[d] = make([]float64, n)
	}
	return s
}

// Scale multiplies every variable by a.
func (s *ElasticState) Scale(a float64) {
	for c := range s.S {
		scale(s.S[c], a)
	}
	for d := range s.V {
		scale(s.V[d], a)
	}
}

// AddScaled accumulates s += a*t.
func (s *ElasticState) AddScaled(a float64, t *ElasticState) {
	for c := range s.S {
		addScaled(s.S[c], a, t.S[c])
	}
	for d := range s.V {
		addScaled(s.V[d], a, t.V[d])
	}
}

// Copy duplicates the state.
func (s *ElasticState) Copy() *ElasticState {
	c := &ElasticState{}
	for i := range s.S {
		c.S[i] = append([]float64(nil), s.S[i]...)
	}
	for d := range s.V {
		c.V[d] = append([]float64(nil), s.V[d]...)
	}
	return c
}

// ElasticSolver evaluates the semi-discrete RHS of the velocity-stress
// form of the elastic wave equation (Eq. 2):
//
//	dS/dt = mu (grad v + grad v^T) + lambda (div v) I
//	dv/dt = (1/rho) div S
type ElasticSolver struct {
	Op       *Operator
	Mat      *material.ElasticField
	Flux     FluxType
	FreeSurf bool // traction-free boundary on non-periodic faces
	// Workers > 1 runs the RHS with that many goroutines (elements are
	// independent; see parallel.go). Results are identical to serial.
	Workers int
	// Obs, when non-nil, records per-stage RHS timings and parallel-range
	// utilization (see parallel.go). Nil keeps the uninstrumented path.
	Obs *obs.Sink
	// Tuning controls the adaptive serial/parallel dispatch of RHSParallel
	// (see parallel.go). The zero value uses the measured defaults.
	Tuning ParallelTuning

	scratch    [4][]float64
	parScratch []elasticScratch
}

// NewElasticSolver builds a solver over the given mesh and material field.
func NewElasticSolver(m *mesh.Mesh, mat *material.ElasticField, flux FluxType) *ElasticSolver {
	if len(mat.ByElem) != m.NumElem {
		panic(fmt.Sprintf("dg: material field has %d elements, mesh has %d", len(mat.ByElem), m.NumElem))
	}
	s := &ElasticSolver{Op: NewOperator(m), Mat: mat, Flux: flux, FreeSurf: true}
	for i := range s.scratch {
		s.scratch[i] = make([]float64, m.NodesPerEl)
	}
	return s
}

// RHS computes the full right-hand side (Volume + Flux) into rhs.
func (s *ElasticSolver) RHS(q, rhs *ElasticState) {
	if s.Workers > 1 {
		s.RHSParallel(q, rhs, s.Workers)
		return
	}
	s.rhsSerial(q, rhs)
}

// rhsSerial is the unpooled RHS body, shared by RHS and the adaptive
// below-threshold fallback in RHSParallel.
func (s *ElasticSolver) rhsSerial(q, rhs *ElasticState) {
	if s.Obs != nil {
		defer observeSerialRHS(s.Obs, "elastic", time.Now())
	}
	s.VolumeKernel(q, rhs)
	s.FluxKernel(q, rhs)
}

// VolumeKernel computes the element-local derivatives: the velocity
// gradient (grad v, Table 1) feeding the stress update and the stress
// divergence (div S) feeding the velocity update.
func (s *ElasticSolver) VolumeKernel(q, rhs *ElasticState) {
	for e := 0; e < s.Op.M.NumElem; e++ {
		s.volumeElem(q, rhs, e, s.scratch[0], s.scratch[1], s.scratch[2])
	}
}

// volumeElem computes one element's Volume contribution with caller-owned
// scratch (shared by the serial and parallel paths).
func (s *ElasticSolver) volumeElem(q, rhs *ElasticState, e int, da, db, dc []float64) {
	m := s.Op.M
	nn := m.NodesPerEl
	off := e * nn
	mat := s.Mat.ByElem[e]
	la, mu := mat.Lambda, mat.Mu

	// Diagonal stress components from dvx/dx, dvy/dy, dvz/dz.
	s.Op.Diff(q.V[0][off:off+nn], mesh.AxisX, da)
	s.Op.Diff(q.V[1][off:off+nn], mesh.AxisY, db)
	s.Op.Diff(q.V[2][off:off+nn], mesh.AxisZ, dc)
	for n := 0; n < nn; n++ {
		div := da[n] + db[n] + dc[n]
		rhs.S[SXX][off+n] = la*div + 2*mu*da[n]
		rhs.S[SYY][off+n] = la*div + 2*mu*db[n]
		rhs.S[SZZ][off+n] = la*div + 2*mu*dc[n]
	}
	// Shear components from symmetrized cross-derivatives.
	s.Op.Diff(q.V[0][off:off+nn], mesh.AxisY, da) // dvx/dy
	s.Op.Diff(q.V[1][off:off+nn], mesh.AxisX, db) // dvy/dx
	for n := 0; n < nn; n++ {
		rhs.S[SXY][off+n] = mu * (da[n] + db[n])
	}
	s.Op.Diff(q.V[0][off:off+nn], mesh.AxisZ, da) // dvx/dz
	s.Op.Diff(q.V[2][off:off+nn], mesh.AxisX, db) // dvz/dx
	for n := 0; n < nn; n++ {
		rhs.S[SXZ][off+n] = mu * (da[n] + db[n])
	}
	s.Op.Diff(q.V[1][off:off+nn], mesh.AxisZ, da) // dvy/dz
	s.Op.Diff(q.V[2][off:off+nn], mesh.AxisY, db) // dvz/dy
	for n := 0; n < nn; n++ {
		rhs.S[SYZ][off+n] = mu * (da[n] + db[n])
	}

	// Velocity update from div S (div S)_i = d sigma_ij / dx_j.
	invRho := 1 / mat.Rho
	s.Op.Diff(q.S[SXX][off:off+nn], mesh.AxisX, da)
	s.Op.AddDiff(q.S[SXY][off:off+nn], mesh.AxisY, da)
	s.Op.AddDiff(q.S[SXZ][off:off+nn], mesh.AxisZ, da)
	s.Op.Diff(q.S[SXY][off:off+nn], mesh.AxisX, db)
	s.Op.AddDiff(q.S[SYY][off:off+nn], mesh.AxisY, db)
	s.Op.AddDiff(q.S[SYZ][off:off+nn], mesh.AxisZ, db)
	s.Op.Diff(q.S[SXZ][off:off+nn], mesh.AxisX, dc)
	s.Op.AddDiff(q.S[SYZ][off:off+nn], mesh.AxisY, dc)
	s.Op.AddDiff(q.S[SZZ][off:off+nn], mesh.AxisZ, dc)
	for n := 0; n < nn; n++ {
		rhs.V[0][off+n] = invRho * da[n]
		rhs.V[1][off+n] = invRho * db[n]
		rhs.V[2][off+n] = invRho * dc[n]
	}
}

// traction computes T = S.n for a face with unit normal along axis with
// the given sign, returning the 3 traction components of node idx.
func traction(q *ElasticState, idx int, axis int, sign float64) (tx, ty, tz float64) {
	switch axis {
	case 0:
		return sign * q.S[SXX][idx], sign * q.S[SXY][idx], sign * q.S[SXZ][idx]
	case 1:
		return sign * q.S[SXY][idx], sign * q.S[SYY][idx], sign * q.S[SYZ][idx]
	default:
		return sign * q.S[SXZ][idx], sign * q.S[SYZ][idx], sign * q.S[SZZ][idx]
	}
}

// FluxKernel adds the interface part of the RHS. The interface states are
// obtained from the plane-wave characteristics: P-wave impedance acts on
// the normal components, S-wave impedance on the tangential ones. With
// CentralFlux the impedance penalties vanish and the interface states are
// plain averages.
func (s *ElasticSolver) FluxKernel(q, rhs *ElasticState) {
	m := s.Op.M
	for e := 0; e < m.NumElem; e++ {
		for f := mesh.Face(0); f < mesh.NumFaces; f++ {
			s.fluxFace(q, rhs, e, f)
		}
	}
}

// FluxKernelFace exposes per-face flux computation for the batched PIM
// schedule.
func (s *ElasticSolver) FluxKernelFace(q, rhs *ElasticState, e int, f mesh.Face) {
	s.fluxFace(q, rhs, e, f)
}

func (s *ElasticSolver) fluxFace(q, rhs *ElasticState, e int, f mesh.Face) {
	m := s.Op.M
	nn := m.NodesPerEl
	off := e * nn
	mat := s.Mat.ByElem[e]
	lift := s.Op.Lift()
	myNodes := s.Op.FaceNodes(f)
	axis := int(f.Axis())
	sign := float64(f.Sign())

	nid, ok := m.Neighbor(e, f)
	var nbNodes []int
	var nbOff int
	if ok {
		nbNodes = s.Op.FaceNodes(f.Opposite())
		nbOff = nid * nn
	}

	zp, zs := mat.PImpedance(), mat.SImpedance()
	la, mu := mat.Lambda, mat.Mu
	invRho := 1 / mat.Rho
	for g, n := range myNodes {
		idx := off + n
		// Minus (interior) side.
		var vm, vp [3]float64
		for d := 0; d < 3; d++ {
			vm[d] = q.V[d][idx]
		}
		txm, tym, tzm := traction(q, idx, axis, sign)
		var txp, typ, tzp float64
		if ok {
			nidx := nbOff + nbNodes[g]
			for d := 0; d < 3; d++ {
				vp[d] = q.V[d][nidx]
			}
			txp, typ, tzp = traction(q, nidx, axis, sign)
		} else if s.FreeSurf {
			// Traction-free surface: mirror traction, keep velocity.
			vp = vm
			txp, typ, tzp = -txm, -tym, -tzm
		} else {
			// Rigid: mirror velocity, keep traction.
			for d := 0; d < 3; d++ {
				vp[d] = -vm[d]
			}
			txp, typ, tzp = txm, tym, tzm
		}

		// Jumps (plus minus minus) and averages.
		dT := [3]float64{txp - txm, typ - tym, tzp - tzm}
		var dV, avgV, avgT [3]float64
		avgT = [3]float64{(txp + txm) / 2, (typ + tym) / 2, (tzp + tzm) / 2}
		for d := 0; d < 3; d++ {
			dV[d] = vp[d] - vm[d]
			avgV[d] = (vp[d] + vm[d]) / 2
		}

		// Normal direction as a vector.
		var nv [3]float64
		nv[axis] = sign

		// Interface states.
		var vStar, tStar [3]float64
		switch s.Flux {
		case CentralFlux:
			vStar, tStar = avgV, avgT
		case RiemannFlux:
			// Split jumps into normal and tangential parts.
			dTn := dT[axis] * sign // scalar n . dT
			dVn := dV[axis] * sign
			for d := 0; d < 3; d++ {
				dTt := dT[d] - nv[d]*dTn
				dVt := dV[d] - nv[d]*dVn
				vStar[d] = avgV[d] + nv[d]*dTn/(2*zp) + dTt/(2*zs)
				tStar[d] = avgT[d] + nv[d]*(zp/2)*dVn + (zs/2)*dVt
			}
		}

		// Stress equation surface correction: replace the face velocity by
		// v* (lift times the difference from the interior value).
		dvx := vStar[0] - vm[0]
		dvy := vStar[1] - vm[1]
		dvz := vStar[2] - vm[2]
		ndv := [3]float64{dvx, dvy, dvz}[axis] * sign // n . (v*-v-)
		rhs.S[SXX][idx] += lift * (la*ndv + 2*mu*nv[0]*dvx)
		rhs.S[SYY][idx] += lift * (la*ndv + 2*mu*nv[1]*dvy)
		rhs.S[SZZ][idx] += lift * (la*ndv + 2*mu*nv[2]*dvz)
		rhs.S[SXY][idx] += lift * mu * (nv[0]*dvy + nv[1]*dvx)
		rhs.S[SXZ][idx] += lift * mu * (nv[0]*dvz + nv[2]*dvx)
		rhs.S[SYZ][idx] += lift * mu * (nv[1]*dvz + nv[2]*dvy)

		// Velocity equation surface correction: replace the face traction
		// by T*.
		rhs.V[0][idx] += lift * invRho * (tStar[0] - txm)
		rhs.V[1][idx] += lift * invRho * (tStar[1] - tym)
		rhs.V[2][idx] += lift * invRho * (tStar[2] - tzm)
	}
}

// MaxStableDt returns a CFL-limited time step.
func (s *ElasticSolver) MaxStableDt(cfl float64) float64 {
	m := s.Op.M
	minDx := (m.Rule.Points[1] - m.Rule.Points[0]) * m.H / 2
	return cfl * minDx / s.Mat.MaxWaveSpeed()
}

// Energy returns the discrete elastic energy: kinetic plus strain energy,
// E = Int( rho |v|^2/2 + S : C^-1 S / 2 ).
func (s *ElasticSolver) Energy(q *ElasticState) float64 {
	m := s.Op.M
	nn := m.NodesPerEl
	u := s.scratch[3]
	var total float64
	for e := 0; e < m.NumElem; e++ {
		off := e * nn
		mat := s.Mat.ByElem[e]
		la, mu, rho := mat.Lambda, mat.Mu, mat.Rho
		// Compliance applied to the diagonal: eps_ii = (s_ii - la/(3la+2mu) tr)/2mu.
		c1 := 1 / (2 * mu)
		c2 := la / (2 * mu * (3*la + 2*mu))
		for n := 0; n < nn; n++ {
			i := off + n
			sxx, syy, szz := q.S[SXX][i], q.S[SYY][i], q.S[SZZ][i]
			sxy, sxz, syz := q.S[SXY][i], q.S[SXZ][i], q.S[SYZ][i]
			tr := sxx + syy + szz
			exx := c1*sxx - c2*tr
			eyy := c1*syy - c2*tr
			ezz := c1*szz - c2*tr
			strain := (sxx*exx + syy*eyy + szz*ezz + 2*c1*(sxy*sxy+sxz*sxz+syz*syz)) / 2
			kin := rho * (q.V[0][i]*q.V[0][i] + q.V[1][i]*q.V[1][i] + q.V[2][i]*q.V[2][i]) / 2
			u[n] = strain + kin
		}
		total += s.Op.IntegrateElement(u)
	}
	return total
}

// PlaneWavePX initializes a plane P-wave moving in +x:
// vx = sin(2 pi k (x - cp t)), sxx = -rho cp vx, syy = szz = -(lambda/cp) vx.
func PlaneWavePX(m *mesh.Mesh, mat material.Elastic, k int, q *ElasticState) {
	cp := mat.PWaveSpeed()
	nn := m.NodesPerEl
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < nn; n++ {
			x, _, _ := m.NodePosition(e, n)
			vx := math.Sin(2 * math.Pi * float64(k) * x)
			i := e*nn + n
			q.V[0][i] = vx
			q.S[SXX][i] = -mat.Rho * cp * vx
			q.S[SYY][i] = -(mat.Lambda / cp) * vx
			q.S[SZZ][i] = -(mat.Lambda / cp) * vx
		}
	}
}

// PlaneWaveSX initializes a plane S-wave moving in +x with polarization y:
// vy = sin(2 pi k (x - cs t)), sxy = -rho cs vy.
func PlaneWaveSX(m *mesh.Mesh, mat material.Elastic, k int, q *ElasticState) {
	cs := mat.SWaveSpeed()
	nn := m.NodesPerEl
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < nn; n++ {
			x, _, _ := m.NodePosition(e, n)
			vy := math.Sin(2 * math.Pi * float64(k) * x)
			i := e*nn + n
			q.V[1][i] = vy
			q.S[SXY][i] = -mat.Rho * cs * vy
		}
	}
}

// PlaneWavePXAt returns the analytic P-wave vx at (x, t).
func PlaneWavePXAt(mat material.Elastic, k int, x, t float64) float64 {
	return math.Sin(2 * math.Pi * float64(k) * (x - mat.PWaveSpeed()*t))
}

// PlaneWaveSXAt returns the analytic S-wave vy at (x, t).
func PlaneWaveSXAt(mat material.Elastic, k int, x, t float64) float64 {
	return math.Sin(2 * math.Pi * float64(k) * (x - mat.SWaveSpeed()*t))
}
