package dg

import (
	"runtime"
	"sync"

	"wavepim/internal/mesh"
)

// Multi-core execution of the reference solver. Elements are independent
// in both the Volume kernel (purely element-local) and the Flux kernel
// (each element writes only its own rows and reads neighbor values that no
// kernel mutates), so a worker pool over element ranges parallelizes both
// without locks. Each worker owns its scratch buffers.
//
// Set Workers > 1 on a solver to enable; 0 or 1 keeps the serial path.
// The parallel path computes bit-identical results to the serial one
// (per-element arithmetic order is unchanged).

// parallelFor splits [0, n) into contiguous chunks across workers and
// waits for completion. fn receives the element range and a worker index
// for scratch selection.
func parallelFor(n, workers int, fn func(lo, hi, worker int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n, 0)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi, w int) {
			defer wg.Done()
			fn(lo, hi, w)
		}(lo, hi, w)
	}
	wg.Wait()
}

// DefaultWorkers returns a sensible worker count for this machine.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// acousticScratch is one worker's private work arrays.
type acousticScratch struct {
	divV, dPd []float64
}

// RHSParallel computes the full RHS using workers goroutines. It is
// equivalent to RHS; the integrators use it automatically when the
// solver's Workers field is set above 1.
func (s *AcousticSolver) RHSParallel(q, rhs *AcousticState, workers int) {
	m := s.Op.M
	nn := m.NodesPerEl
	scratch := make([]acousticScratch, workers)
	for i := range scratch {
		scratch[i] = acousticScratch{divV: make([]float64, nn), dPd: make([]float64, nn)}
	}
	parallelFor(m.NumElem, workers, func(lo, hi, w int) {
		sc := scratch[w]
		for e := lo; e < hi; e++ {
			s.volumeElem(q, rhs, e, sc.divV, sc.dPd)
			for f := mesh.Face(0); f < mesh.NumFaces; f++ {
				s.fluxFace(q, rhs, e, f)
			}
		}
	})
}

// volumeElem computes one element's Volume contribution with caller-owned
// scratch (shared by the serial and parallel paths).
func (s *AcousticSolver) volumeElem(q, rhs *AcousticState, e int, divV, dPd []float64) {
	m := s.Op.M
	nn := m.NodesPerEl
	off := e * nn
	mat := s.Mat.ByElem[e]
	s.Op.Diff(q.V[0][off:off+nn], mesh.AxisX, divV)
	s.Op.AddDiff(q.V[1][off:off+nn], mesh.AxisY, divV)
	s.Op.AddDiff(q.V[2][off:off+nn], mesh.AxisZ, divV)
	for n := 0; n < nn; n++ {
		rhs.P[off+n] = -mat.Kappa * divV[n]
	}
	invRho := 1 / mat.Rho
	for d := 0; d < 3; d++ {
		s.Op.Diff(q.P[off:off+nn], mesh.Axis(d), dPd)
		for n := 0; n < nn; n++ {
			rhs.V[d][off+n] = -invRho * dPd[n]
		}
	}
}
