package dg

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wavepim/internal/material"
	"wavepim/internal/mesh"
	"wavepim/internal/obs"
)

// Multi-core execution of the reference solvers. Elements are independent
// in both the Volume kernel (purely element-local) and the Flux kernel
// (each element writes only its own rows and reads neighbor values that no
// kernel mutates), so a worker pool over element ranges parallelizes both
// without locks. Each worker owns its scratch buffers, cached on the
// solver so the five RHS evaluations per RK time-step don't reallocate.
//
// Dispatch is adaptive: below a measured work threshold RHSParallel runs
// the exact serial path (zero pool overhead — BENCH_pr5.json showed the
// unconditional pool losing 1-9% at benchmark sizes), and above it the
// worker count is capped so every chunk amortizes its scheduling cost
// (see ParallelTuning). Set Workers > 1 on a solver to enable; 0 or 1
// keeps the serial path. The parallel path computes bit-identical results
// to the serial one (per-element arithmetic order is unchanged). A solver
// must not be used from concurrent RHS calls — the parallelism lives
// inside one call.

// parallelFor splits [0, n) into contiguous chunks across workers and
// waits for completion. fn receives the element range and a worker index
// for scratch selection.
func parallelFor(n, workers int, fn func(lo, hi, worker int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n, 0)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi, w int) {
			defer wg.Done()
			fn(lo, hi, w)
		}(lo, hi, w)
	}
	wg.Wait()
}

// DefaultWorkers returns a sensible worker count for this machine.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ---------------------------------------------------------------------------
// Adaptive dispatch
// ---------------------------------------------------------------------------

// Work units: one unit is one solution value touched per RHS evaluation,
// elements x nodes-per-element x variables. The unit is equation-neutral,
// so one threshold scale serves all three solvers while still reflecting
// that an elastic element (9 vars) costs ~2x an acoustic one (4 vars).
const (
	acousticVars = 4
	elasticVars  = 9
	maxwellVars  = 6
)

// DefaultMinWork and DefaultChunkWork are the measured defaults behind the
// zero-valued ParallelTuning. On the bench trajectory machines the pool's
// fixed overhead (goroutine spawn + barrier + cross-core rhs-array
// writeback) costs the equivalent of roughly 100k work units, and
// BENCH_pr5.json showed even a 124k-unit elastic RHS (64 elements, np=6)
// losing to serial. 160k units (~2-4 ms of serial RHS) is the smallest
// size where the pool reliably pays for itself; every BENCH_pr5 mesh sits
// below it and therefore dispatches serial.
const (
	DefaultMinWork   = 160 << 10
	DefaultChunkWork = 64 << 10
)

// ParallelTuning controls one solver's adaptive RHSParallel dispatch.
// The zero value means "use the measured defaults". Negative values
// disable a bound: MinWork < 0 always parallelizes (test hook),
// ChunkWork < 0 skips the chunk-size cap.
type ParallelTuning struct {
	// MinWork is the work size (see above) below which RHSParallel runs
	// the serial path outright.
	MinWork int
	// ChunkWork caps the worker count at work/ChunkWork so each chunk is
	// big enough to amortize its scheduling cost; coarser chunks beat
	// per-element fan-out well past the crossover point.
	ChunkWork int
}

func (t ParallelTuning) withDefaults() ParallelTuning {
	if t.MinWork == 0 {
		t.MinWork = DefaultMinWork
	}
	if t.ChunkWork == 0 {
		t.ChunkWork = DefaultChunkWork
	}
	return t
}

// Workers resolves the effective worker count for one RHS evaluation over
// n elements totalling work units: 1 below MinWork, otherwise the
// requested count capped by the chunk-size rule and the element count.
func (t ParallelTuning) Workers(work, n, workers int) int {
	t = t.withDefaults()
	if workers <= 1 || n <= 1 {
		return 1
	}
	if t.MinWork > 0 && work < t.MinWork {
		return 1
	}
	if t.ChunkWork > 0 {
		if max := work / t.ChunkWork; workers > max {
			workers = max
		}
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// EffectiveWorkers reports the worker count RHSParallel would actually use
// for this solver's mesh — 1 means the serial path is dispatched
// unchanged. Exposed so regression tests can assert the threshold covers
// the benchmark meshes.
func (s *AcousticSolver) EffectiveWorkers(workers int) int {
	m := s.Op.M
	return s.Tuning.Workers(m.NumElem*m.NodesPerEl*acousticVars, m.NumElem, workers)
}

// EffectiveWorkers is the elastic counterpart of the acoustic method.
func (s *ElasticSolver) EffectiveWorkers(workers int) int {
	m := s.Op.M
	return s.Tuning.Workers(m.NumElem*m.NodesPerEl*elasticVars, m.NumElem, workers)
}

// EffectiveWorkers is the Maxwell counterpart of the acoustic method.
func (s *MaxwellSolver) EffectiveWorkers(workers int) int {
	m := s.Op.M
	return s.Tuning.Workers(m.NumElem*m.NodesPerEl*maxwellVars, m.NumElem, workers)
}

// ---------------------------------------------------------------------------
// Calibration
// ---------------------------------------------------------------------------

// CalibrationPoint is one serial-vs-parallel RHS measurement.
type CalibrationPoint struct {
	Elems    int
	Work     int
	Serial   time.Duration
	Parallel time.Duration
}

// Speedup returns serial/parallel time (>1 means the pool wins).
func (p CalibrationPoint) Speedup() float64 {
	if p.Parallel <= 0 {
		return 0
	}
	return float64(p.Serial) / float64(p.Parallel)
}

// TuneFromPoints derives a ParallelTuning from measured points: MinWork is
// the smallest measured work size where the forced-parallel path beat
// serial by at least margin (e.g. 0.05 for 5%). If the pool never wins —
// a single-core machine, or meshes all below the crossover — MinWork is
// math.MaxInt, which pins every dispatch serial.
func TuneFromPoints(points []CalibrationPoint, margin float64) ParallelTuning {
	t := ParallelTuning{MinWork: math.MaxInt}
	for _, p := range points {
		if p.Speedup() >= 1+margin && p.Work < t.MinWork {
			t.MinWork = p.Work
		}
	}
	return t
}

// timeMinOf reports the minimum wall time of reps runs of fn (minima are
// the least noisy statistic on shared machines).
func timeMinOf(reps int, fn func()) time.Duration {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}

const calibrationReps = 3

// CalibrateAcoustic measures the serial/parallel crossover of the acoustic
// RHS on this machine over meshes at refinements 1..maxRefinement and
// returns the tuned thresholds plus the raw points. The parallel side
// bypasses the adaptive dispatch (it is what the tuning is measuring).
func CalibrateAcoustic(np, maxRefinement, workers int, margin float64) (ParallelTuning, []CalibrationPoint) {
	var points []CalibrationPoint
	for r := 1; r <= maxRefinement; r++ {
		m := mesh.New(r, np, true)
		mat := material.Acoustic{Kappa: 2.25, Rho: 1}
		s := NewAcousticSolver(m, material.UniformAcoustic(m.NumElem, mat), RiemannFlux)
		q, rhs := NewAcousticState(m), NewAcousticState(m)
		PlaneWaveX(m, mat, 1, q)
		s.RHS(q, rhs) // warm caches and scratch
		s.rhsParallel(q, rhs, workers)
		points = append(points, CalibrationPoint{
			Elems:    m.NumElem,
			Work:     m.NumElem * m.NodesPerEl * acousticVars,
			Serial:   timeMinOf(calibrationReps, func() { s.rhsSerial(q, rhs) }),
			Parallel: timeMinOf(calibrationReps, func() { s.rhsParallel(q, rhs, workers) }),
		})
	}
	return TuneFromPoints(points, margin), points
}

// CalibrateElastic is the elastic counterpart of CalibrateAcoustic.
func CalibrateElastic(np, maxRefinement, workers int, margin float64) (ParallelTuning, []CalibrationPoint) {
	var points []CalibrationPoint
	for r := 1; r <= maxRefinement; r++ {
		m := mesh.New(r, np, true)
		mat := material.Elastic{Lambda: 2, Mu: 1, Rho: 1}
		s := NewElasticSolver(m, material.UniformElastic(m.NumElem, mat), RiemannFlux)
		q, rhs := NewElasticState(m), NewElasticState(m)
		PlaneWavePX(m, mat, 1, q)
		s.RHS(q, rhs)
		s.rhsParallel(q, rhs, workers)
		points = append(points, CalibrationPoint{
			Elems:    m.NumElem,
			Work:     m.NumElem * m.NodesPerEl * elasticVars,
			Serial:   timeMinOf(calibrationReps, func() { s.rhsSerial(q, rhs) }),
			Parallel: timeMinOf(calibrationReps, func() { s.rhsParallel(q, rhs, workers) }),
		})
	}
	return TuneFromPoints(points, margin), points
}

// CalibrateMaxwell is the Maxwell counterpart of CalibrateAcoustic.
func CalibrateMaxwell(np, maxRefinement, workers int, margin float64) (ParallelTuning, []CalibrationPoint) {
	var points []CalibrationPoint
	for r := 1; r <= maxRefinement; r++ {
		m := mesh.New(r, np, true)
		s := NewMaxwellSolver(m, material.Vacuum, RiemannFlux)
		q, rhs := NewMaxwellState(m), NewMaxwellState(m)
		PlaneWaveEM(m, material.Vacuum, 1, q)
		s.RHS(q, rhs)
		s.rhsParallel(q, rhs, workers)
		points = append(points, CalibrationPoint{
			Elems:    m.NumElem,
			Work:     m.NumElem * m.NodesPerEl * maxwellVars,
			Serial:   timeMinOf(calibrationReps, func() { s.rhsSerial(q, rhs) }),
			Parallel: timeMinOf(calibrationReps, func() { s.rhsParallel(q, rhs, workers) }),
		})
	}
	return TuneFromPoints(points, margin), points
}

// ---------------------------------------------------------------------------
// Instrumentation
// ---------------------------------------------------------------------------

// runRHS runs one RHS evaluation (per RK stage) through parallelFor,
// instrumenting it when a sink is attached. The nil-sink path dispatches
// straight to parallelFor with the uninstrumented body — a single pointer
// check per RHS call, so BenchmarkRHSParallel is unaffected.
//
// With a sink attached it records, per equation name:
//   - dg.rhs_seconds.<name>: wall-clock histogram of each stage's RHS
//   - dg.rhs_calls.<name>: evaluation count
//   - dg.par_utilization.<name>: sum of per-worker busy time over
//     workers x wall — the parallel-range utilization (1.0 = every worker
//     busy the whole evaluation)
//   - dg.rhs_elems.<name>: elements processed
func runRHS(sink *obs.Sink, name string, n, workers int, body func(lo, hi, w int)) {
	if sink == nil {
		parallelFor(n, workers, body)
		return
	}
	start := time.Now()
	var busyNs int64
	parallelFor(n, workers, func(lo, hi, w int) {
		t0 := time.Now()
		body(lo, hi, w)
		atomic.AddInt64(&busyNs, time.Since(t0).Nanoseconds())
	})
	wall := time.Since(start).Seconds()
	sink.Histogram("dg.rhs_seconds." + name).Observe(wall)
	sink.Counter("dg.rhs_calls." + name).Inc()
	sink.Counter("dg.rhs_elems." + name).Add(int64(n))
	if workers > 1 && wall > 0 {
		sink.Gauge("dg.par_utilization." + name).Set(
			float64(busyNs) * 1e-9 / (wall * float64(min(workers, n))))
	}
}

// observeSerialRHS records one serial RHS evaluation's wall time.
func observeSerialRHS(sink *obs.Sink, name string, start time.Time) {
	sink.Histogram("dg.rhs_seconds." + name).Observe(time.Since(start).Seconds())
	sink.Counter("dg.rhs_calls." + name).Inc()
}

// ---------------------------------------------------------------------------
// Per-worker scratch
//
// False-sharing audit: each scratch entry is padded to its own cache
// lines so adjacent workers' slice headers never share a line, and the
// float64 buffers are allocated with capacities rounded up to a 64-byte
// multiple so one worker's buffer tail cannot share a line with the next
// allocation. The buffers themselves are written by exactly one worker
// per evaluation.
// ---------------------------------------------------------------------------

// padded64 rounds n up so n float64s fill whole 64-byte cache lines.
func padded64(n int) int { return (n + 7) &^ 7 }

// makeScratchVec allocates one worker-private work array with a padded
// capacity (length stays nn).
func makeScratchVec(nn int) []float64 {
	return make([]float64, nn, padded64(nn))
}

// ---------------------------------------------------------------------------
// Acoustic
// ---------------------------------------------------------------------------

// acousticScratch is one worker's private work arrays. The trailing pad
// keeps each entry on its own cache lines inside the solver's scratch
// slice (two slice headers = 48 bytes; pad to 128).
type acousticScratch struct {
	divV, dPd []float64
	_         [80]byte
}

// parScratchFor returns at least workers per-worker scratch sets, growing
// the solver's cache on first use (or when workers increases).
func (s *AcousticSolver) parScratchFor(workers int) []acousticScratch {
	nn := s.Op.M.NodesPerEl
	for len(s.parScratch) < workers {
		s.parScratch = append(s.parScratch, acousticScratch{
			divV: makeScratchVec(nn), dPd: makeScratchVec(nn)})
	}
	return s.parScratch
}

// RHSParallel computes the full RHS with up to workers goroutines. It is
// equivalent to RHS; the integrators use it automatically when the
// solver's Workers field is set above 1. Below the solver's tuning
// threshold it dispatches the unmodified serial path (identical code, no
// pool), so small meshes never pay the pool overhead.
func (s *AcousticSolver) RHSParallel(q, rhs *AcousticState, workers int) {
	if s.EffectiveWorkers(workers) <= 1 {
		s.rhsSerial(q, rhs)
		return
	}
	s.rhsParallel(q, rhs, s.EffectiveWorkers(workers))
}

// rhsParallel is the raw pooled path (no adaptive dispatch); calibration
// measures it directly.
func (s *AcousticSolver) rhsParallel(q, rhs *AcousticState, workers int) {
	m := s.Op.M
	scratch := s.parScratchFor(workers)
	runRHS(s.Obs, "acoustic", m.NumElem, workers, func(lo, hi, w int) {
		sc := scratch[w]
		for e := lo; e < hi; e++ {
			s.volumeElem(q, rhs, e, sc.divV, sc.dPd)
			for f := mesh.Face(0); f < mesh.NumFaces; f++ {
				s.fluxFace(q, rhs, e, f)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Elastic
// ---------------------------------------------------------------------------

// elasticScratch is one worker's private work arrays (the three derivative
// buffers the Volume kernel cycles through), padded to whole cache lines
// (three slice headers = 72 bytes; pad to 128).
type elasticScratch struct {
	da, db, dc []float64
	_          [56]byte
}

func (s *ElasticSolver) parScratchFor(workers int) []elasticScratch {
	nn := s.Op.M.NodesPerEl
	for len(s.parScratch) < workers {
		s.parScratch = append(s.parScratch, elasticScratch{
			da: makeScratchVec(nn), db: makeScratchVec(nn), dc: makeScratchVec(nn)})
	}
	return s.parScratch
}

// RHSParallel computes the full elastic RHS with up to workers goroutines,
// equivalent to RHS (serial below the tuning threshold).
func (s *ElasticSolver) RHSParallel(q, rhs *ElasticState, workers int) {
	if s.EffectiveWorkers(workers) <= 1 {
		s.rhsSerial(q, rhs)
		return
	}
	s.rhsParallel(q, rhs, s.EffectiveWorkers(workers))
}

func (s *ElasticSolver) rhsParallel(q, rhs *ElasticState, workers int) {
	m := s.Op.M
	scratch := s.parScratchFor(workers)
	runRHS(s.Obs, "elastic", m.NumElem, workers, func(lo, hi, w int) {
		sc := scratch[w]
		for e := lo; e < hi; e++ {
			s.volumeElem(q, rhs, e, sc.da, sc.db, sc.dc)
			for f := mesh.Face(0); f < mesh.NumFaces; f++ {
				s.fluxFace(q, rhs, e, f)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Maxwell
// ---------------------------------------------------------------------------

// maxwellScratch is one worker's private work arrays, padded to whole
// cache lines (two slice headers = 48 bytes; pad to 128).
type maxwellScratch struct {
	da, db []float64
	_      [80]byte
}

func (s *MaxwellSolver) parScratchFor(workers int) []maxwellScratch {
	nn := s.Op.M.NodesPerEl
	for len(s.parScratch) < workers {
		s.parScratch = append(s.parScratch, maxwellScratch{
			da: makeScratchVec(nn), db: makeScratchVec(nn)})
	}
	return s.parScratch
}

// RHSParallel computes the full Maxwell RHS with up to workers goroutines,
// equivalent to RHS (serial below the tuning threshold).
func (s *MaxwellSolver) RHSParallel(q, rhs *MaxwellState, workers int) {
	if s.EffectiveWorkers(workers) <= 1 {
		s.rhsSerial(q, rhs)
		return
	}
	s.rhsParallel(q, rhs, s.EffectiveWorkers(workers))
}

func (s *MaxwellSolver) rhsParallel(q, rhs *MaxwellState, workers int) {
	m := s.Op.M
	scratch := s.parScratchFor(workers)
	runRHS(s.Obs, "maxwell", m.NumElem, workers, func(lo, hi, w int) {
		sc := scratch[w]
		for e := lo; e < hi; e++ {
			s.volumeElem(q, rhs, e, sc.da, sc.db)
			for f := mesh.Face(0); f < mesh.NumFaces; f++ {
				s.fluxFace(q, rhs, e, f)
			}
		}
	})
}
