package dg

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wavepim/internal/mesh"
	"wavepim/internal/obs"
)

// Multi-core execution of the reference solvers. Elements are independent
// in both the Volume kernel (purely element-local) and the Flux kernel
// (each element writes only its own rows and reads neighbor values that no
// kernel mutates), so a worker pool over element ranges parallelizes both
// without locks. Each worker owns its scratch buffers, cached on the
// solver so the five RHS evaluations per RK time-step don't reallocate.
//
// Set Workers > 1 on a solver to enable; 0 or 1 keeps the serial path.
// The parallel path computes bit-identical results to the serial one
// (per-element arithmetic order is unchanged). A solver must not be used
// from concurrent RHS calls — the parallelism lives inside one call.

// parallelFor splits [0, n) into contiguous chunks across workers and
// waits for completion. fn receives the element range and a worker index
// for scratch selection.
func parallelFor(n, workers int, fn func(lo, hi, worker int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n, 0)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi, w int) {
			defer wg.Done()
			fn(lo, hi, w)
		}(lo, hi, w)
	}
	wg.Wait()
}

// DefaultWorkers returns a sensible worker count for this machine.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ---------------------------------------------------------------------------
// Instrumentation
// ---------------------------------------------------------------------------

// runRHS runs one RHS evaluation (per RK stage) through parallelFor,
// instrumenting it when a sink is attached. The nil-sink path dispatches
// straight to parallelFor with the uninstrumented body — a single pointer
// check per RHS call, so BenchmarkRHSParallel is unaffected.
//
// With a sink attached it records, per equation name:
//   - dg.rhs_seconds.<name>: wall-clock histogram of each stage's RHS
//   - dg.rhs_calls.<name>: evaluation count
//   - dg.par_utilization.<name>: sum of per-worker busy time over
//     workers x wall — the parallel-range utilization (1.0 = every worker
//     busy the whole evaluation)
//   - dg.rhs_elems.<name>: elements processed
func runRHS(sink *obs.Sink, name string, n, workers int, body func(lo, hi, w int)) {
	if sink == nil {
		parallelFor(n, workers, body)
		return
	}
	start := time.Now()
	var busyNs int64
	parallelFor(n, workers, func(lo, hi, w int) {
		t0 := time.Now()
		body(lo, hi, w)
		atomic.AddInt64(&busyNs, time.Since(t0).Nanoseconds())
	})
	wall := time.Since(start).Seconds()
	sink.Histogram("dg.rhs_seconds." + name).Observe(wall)
	sink.Counter("dg.rhs_calls." + name).Inc()
	sink.Counter("dg.rhs_elems." + name).Add(int64(n))
	if workers > 1 && wall > 0 {
		sink.Gauge("dg.par_utilization." + name).Set(
			float64(busyNs) * 1e-9 / (wall * float64(min(workers, n))))
	}
}

// observeSerialRHS records one serial RHS evaluation's wall time.
func observeSerialRHS(sink *obs.Sink, name string, start time.Time) {
	sink.Histogram("dg.rhs_seconds." + name).Observe(time.Since(start).Seconds())
	sink.Counter("dg.rhs_calls." + name).Inc()
}

// ---------------------------------------------------------------------------
// Acoustic
// ---------------------------------------------------------------------------

// acousticScratch is one worker's private work arrays.
type acousticScratch struct {
	divV, dPd []float64
}

// parScratchFor returns at least workers per-worker scratch sets, growing
// the solver's cache on first use (or when workers increases).
func (s *AcousticSolver) parScratchFor(workers int) []acousticScratch {
	nn := s.Op.M.NodesPerEl
	for len(s.parScratch) < workers {
		s.parScratch = append(s.parScratch, acousticScratch{
			divV: make([]float64, nn), dPd: make([]float64, nn)})
	}
	return s.parScratch
}

// RHSParallel computes the full RHS using workers goroutines. It is
// equivalent to RHS; the integrators use it automatically when the
// solver's Workers field is set above 1.
func (s *AcousticSolver) RHSParallel(q, rhs *AcousticState, workers int) {
	m := s.Op.M
	scratch := s.parScratchFor(workers)
	runRHS(s.Obs, "acoustic", m.NumElem, workers, func(lo, hi, w int) {
		sc := scratch[w]
		for e := lo; e < hi; e++ {
			s.volumeElem(q, rhs, e, sc.divV, sc.dPd)
			for f := mesh.Face(0); f < mesh.NumFaces; f++ {
				s.fluxFace(q, rhs, e, f)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Elastic
// ---------------------------------------------------------------------------

// elasticScratch is one worker's private work arrays (the three derivative
// buffers the Volume kernel cycles through).
type elasticScratch struct {
	da, db, dc []float64
}

func (s *ElasticSolver) parScratchFor(workers int) []elasticScratch {
	nn := s.Op.M.NodesPerEl
	for len(s.parScratch) < workers {
		s.parScratch = append(s.parScratch, elasticScratch{
			da: make([]float64, nn), db: make([]float64, nn), dc: make([]float64, nn)})
	}
	return s.parScratch
}

// RHSParallel computes the full elastic RHS using workers goroutines,
// equivalent to RHS.
func (s *ElasticSolver) RHSParallel(q, rhs *ElasticState, workers int) {
	m := s.Op.M
	scratch := s.parScratchFor(workers)
	runRHS(s.Obs, "elastic", m.NumElem, workers, func(lo, hi, w int) {
		sc := scratch[w]
		for e := lo; e < hi; e++ {
			s.volumeElem(q, rhs, e, sc.da, sc.db, sc.dc)
			for f := mesh.Face(0); f < mesh.NumFaces; f++ {
				s.fluxFace(q, rhs, e, f)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Maxwell
// ---------------------------------------------------------------------------

// maxwellScratch is one worker's private work arrays.
type maxwellScratch struct {
	da, db []float64
}

func (s *MaxwellSolver) parScratchFor(workers int) []maxwellScratch {
	nn := s.Op.M.NodesPerEl
	for len(s.parScratch) < workers {
		s.parScratch = append(s.parScratch, maxwellScratch{
			da: make([]float64, nn), db: make([]float64, nn)})
	}
	return s.parScratch
}

// RHSParallel computes the full Maxwell RHS using workers goroutines,
// equivalent to RHS.
func (s *MaxwellSolver) RHSParallel(q, rhs *MaxwellState, workers int) {
	m := s.Op.M
	scratch := s.parScratchFor(workers)
	runRHS(s.Obs, "maxwell", m.NumElem, workers, func(lo, hi, w int) {
		sc := scratch[w]
		for e := lo; e < hi; e++ {
			s.volumeElem(q, rhs, e, sc.da, sc.db)
			for f := mesh.Face(0); f < mesh.NumFaces; f++ {
				s.fluxFace(q, rhs, e, f)
			}
		}
	})
}
