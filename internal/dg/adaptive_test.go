package dg

import (
	"math"
	"testing"
	"time"
	"unsafe"

	"wavepim/internal/material"
	"wavepim/internal/mesh"
)

// Regression for the BENCH_pr5.json pessimization: at the benchmark sizes
// used there (mesh.New(2, 6, true) — 64 elements, np=6) the parallel RHS
// lost to serial for all three equations, so the default tuning must
// dispatch those meshes serial (EffectiveWorkers == 1 ⇒ RHSParallel runs
// the identical serial path, which is trivially "parallel >= serial").
func TestAdaptiveBenchMeshesDispatchSerial(t *testing.T) {
	m := mesh.New(2, 6, true) // the BENCH_pr5/BENCH_pr6 RHS benchmark mesh
	ac := NewAcousticSolver(m, material.UniformAcoustic(m.NumElem, waterLike), RiemannFlux)
	el := NewElasticSolver(m, material.UniformElastic(m.NumElem, rockLike), RiemannFlux)
	mx := NewMaxwellSolver(m, material.Vacuum, RiemannFlux)
	for _, workers := range []int{2, 4, 8, 64} {
		if w := ac.EffectiveWorkers(workers); w != 1 {
			t.Errorf("acoustic bench mesh: EffectiveWorkers(%d) = %d, want 1 (serial dispatch)", workers, w)
		}
		if w := el.EffectiveWorkers(workers); w != 1 {
			t.Errorf("elastic bench mesh: EffectiveWorkers(%d) = %d, want 1 (serial dispatch)", workers, w)
		}
		if w := mx.EffectiveWorkers(workers); w != 1 {
			t.Errorf("maxwell bench mesh: EffectiveWorkers(%d) = %d, want 1 (serial dispatch)", workers, w)
		}
	}
}

// Below the threshold, RHSParallel must produce bit-identical output to the
// serial RHS with zero pool overhead (it IS the serial path) — and it must
// not allocate worker scratch, the observable signature of serial dispatch.
func TestAdaptiveSerialFallbackIdentical(t *testing.T) {
	m := mesh.New(2, 5, true)
	s := NewAcousticSolver(m, material.UniformAcoustic(m.NumElem, waterLike), RiemannFlux)
	q := NewAcousticState(m)
	PlaneWaveX(m, waterLike, 1, q)
	serial, par := NewAcousticState(m), NewAcousticState(m)
	s.rhsSerial(q, serial)
	s.RHSParallel(q, par, 8)
	for i := range serial.P {
		if serial.P[i] != par.P[i] {
			t.Fatalf("serial fallback differs at node %d", i)
		}
	}
	if len(s.parScratch) != 0 {
		t.Errorf("below-threshold RHSParallel allocated %d scratch sets; want 0 (serial dispatch)", len(s.parScratch))
	}
}

// ParallelTuning.Workers resolves the documented dispatch rules.
func TestTuningWorkersRules(t *testing.T) {
	cases := []struct {
		name             string
		t                ParallelTuning
		work, n, workers int
		want             int
	}{
		{"below default MinWork", ParallelTuning{}, DefaultMinWork - 1, 1000, 8, 1},
		{"at default MinWork", ParallelTuning{}, DefaultMinWork, 1000, 8, 2}, // chunk cap: 160k/64k = 2
		{"chunk cap limits workers", ParallelTuning{}, 4 * DefaultChunkWork, 1000, 16, 4},
		{"big work keeps workers", ParallelTuning{}, 100 * DefaultChunkWork, 1000, 8, 8},
		{"element count caps workers", ParallelTuning{MinWork: -1, ChunkWork: -1}, 10, 3, 8, 3},
		{"workers<=1 stays serial", ParallelTuning{MinWork: -1}, 1 << 30, 1000, 1, 1},
		{"single element stays serial", ParallelTuning{MinWork: -1}, 1 << 30, 1, 8, 1},
		{"negative MinWork forces parallel", ParallelTuning{MinWork: -1, ChunkWork: -1}, 1, 100, 8, 8},
		{"tiny work under default chunk", ParallelTuning{MinWork: -1}, 100, 100, 8, 1},
		{"custom MinWork honored", ParallelTuning{MinWork: 50, ChunkWork: -1}, 49, 100, 8, 1},
		{"custom MinWork passes", ParallelTuning{MinWork: 50, ChunkWork: -1}, 50, 100, 8, 8},
	}
	for _, c := range cases {
		if got := c.t.Workers(c.work, c.n, c.workers); got != c.want {
			t.Errorf("%s: Workers(%d, %d, %d) = %d, want %d", c.name, c.work, c.n, c.workers, got, c.want)
		}
	}
}

// Above the threshold the adaptive path still matches serial bit-for-bit
// (chunk-capped worker counts change only the range split, never the
// per-element arithmetic).
func TestAdaptiveAboveThresholdBitIdentical(t *testing.T) {
	m := mesh.New(2, 5, true)
	s := NewAcousticSolver(m, material.UniformAcoustic(m.NumElem, waterLike), RiemannFlux)
	s.Tuning = ParallelTuning{MinWork: 1, ChunkWork: 1000} // work=32000 → cap at 32 workers
	if w := s.EffectiveWorkers(8); w != 8 {
		t.Fatalf("EffectiveWorkers(8) = %d, want 8", w)
	}
	if w := s.EffectiveWorkers(64); w != 32 {
		t.Fatalf("EffectiveWorkers(64) = %d, want 32 (chunk cap)", w)
	}
	q := NewAcousticState(m)
	PlaneWaveX(m, waterLike, 1, q)
	serial, par := NewAcousticState(m), NewAcousticState(m)
	s.rhsSerial(q, serial)
	s.RHSParallel(q, par, 64)
	for i := range serial.P {
		if serial.P[i] != par.P[i] {
			t.Fatalf("chunk-capped parallel differs at node %d", i)
		}
	}
}

// TuneFromPoints picks the smallest work size where the pool wins by the
// margin, and pins dispatch fully serial when it never wins.
func TestTuneFromPoints(t *testing.T) {
	pts := []CalibrationPoint{
		{Elems: 8, Work: 2048, Serial: 100 * time.Microsecond, Parallel: 180 * time.Microsecond},
		{Elems: 64, Work: 16384, Serial: 800 * time.Microsecond, Parallel: 780 * time.Microsecond},
		{Elems: 512, Work: 131072, Serial: 6400 * time.Microsecond, Parallel: 2100 * time.Microsecond},
		{Elems: 4096, Work: 1048576, Serial: 51 * time.Millisecond, Parallel: 14 * time.Millisecond},
	}
	tun := TuneFromPoints(pts, 0.05)
	if tun.MinWork != 131072 {
		t.Errorf("MinWork = %d, want 131072 (smallest winning size)", tun.MinWork)
	}
	// 64-elem point wins by only 2.6% — inside the margin, so not chosen.
	if got := TuneFromPoints(pts, 0.01).MinWork; got != 16384 {
		t.Errorf("1%% margin MinWork = %d, want 16384", got)
	}
	// Pool never wins ⇒ MinWork pins everything serial.
	lose := []CalibrationPoint{{Work: 100, Serial: time.Millisecond, Parallel: 2 * time.Millisecond}}
	if got := TuneFromPoints(lose, 0.05); got.MinWork != math.MaxInt {
		t.Errorf("losing points: MinWork = %d, want MaxInt", got.MinWork)
	}
	if got := (CalibrationPoint{}).Speedup(); got != 0 {
		t.Errorf("zero point speedup = %g, want 0", got)
	}
}

// The calibration helpers run end-to-end and measure real crossovers; the
// resulting tuning must dispatch sub-crossover meshes serial.
func TestCalibrationSmoke(t *testing.T) {
	tun, pts := CalibrateAcoustic(4, 2, 2, 0.05)
	if len(pts) != 2 {
		t.Fatalf("calibration returned %d points, want 2", len(pts))
	}
	for i, p := range pts {
		if p.Serial <= 0 || p.Parallel <= 0 || p.Work <= 0 {
			t.Errorf("point %d not measured: %+v", i, p)
		}
	}
	// Whatever MinWork came out, the dispatch rule must be self-consistent:
	// any measured point below it resolves to serial.
	for _, p := range pts {
		if p.Work < tun.MinWork && tun.Workers(p.Work, p.Elems, 8) != 1 {
			t.Errorf("work %d below tuned MinWork %d but dispatched parallel", p.Work, tun.MinWork)
		}
	}
	if _, pts := CalibrateElastic(3, 1, 2, 0.05); len(pts) != 1 {
		t.Error("elastic calibration did not measure")
	}
	if _, pts := CalibrateMaxwell(3, 1, 2, 0.05); len(pts) != 1 {
		t.Error("maxwell calibration did not measure")
	}
}

// False-sharing audit: every per-worker scratch entry must occupy whole
// cache lines (size a multiple of 64, at least two lines), and the padded
// float64 buffers must fill whole lines so one worker's tail never shares
// a line with the next allocation.
func TestScratchCacheLinePadding(t *testing.T) {
	check := func(name string, size uintptr) {
		if size%64 != 0 || size < 128 {
			t.Errorf("%s scratch is %d bytes; want a multiple of 64, >= 128", name, size)
		}
	}
	check("acoustic", unsafe.Sizeof(acousticScratch{}))
	check("elastic", unsafe.Sizeof(elasticScratch{}))
	check("maxwell", unsafe.Sizeof(maxwellScratch{}))
	for _, nn := range []int{1, 7, 8, 125, 216, 343} {
		v := makeScratchVec(nn)
		if len(v) != nn {
			t.Fatalf("makeScratchVec(%d) len = %d", nn, len(v))
		}
		if cap(v)%8 != 0 {
			t.Errorf("makeScratchVec(%d) cap = %d floats; want multiple of 8 (64B lines)", nn, cap(v))
		}
	}
}
