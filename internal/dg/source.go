package dg

import (
	"math"

	"wavepim/internal/mesh"
)

// Ricker is the Ricker wavelet (second derivative of a Gaussian), the
// standard source time function of seismic wave simulation:
//
//	r(t) = (1 - 2 pi^2 f^2 (t-t0)^2) exp(-pi^2 f^2 (t-t0)^2)
func Ricker(peakFreq, t0, t float64) float64 {
	a := math.Pi * peakFreq * (t - t0)
	a2 := a * a
	return (1 - 2*a2) * math.Exp(-a2)
}

// PointSource injects a source time function at the node of the mesh
// nearest to the given physical position.
type PointSource struct {
	Elem, Node int     // injection site
	Amp        float64 // amplitude
	PeakFreq   float64 // Ricker peak frequency
	Delay      float64 // Ricker delay t0
	scale      float64 // converts amplitude to a nodal RHS density
}

// NewPointSource locates the closest node to (x,y,z) and returns a source
// with sensible Ricker defaults for the mesh resolution.
func NewPointSource(m *mesh.Mesh, x, y, z, amp float64) *PointSource {
	bestE, bestN, bestD := 0, 0, math.Inf(1)
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < m.NodesPerEl; n++ {
			px, py, pz := m.NodePosition(e, n)
			d := (px-x)*(px-x) + (py-y)*(py-y) + (pz-z)*(pz-z)
			if d < bestD {
				bestE, bestN, bestD = e, n, d
			}
		}
	}
	// Nodal quadrature weight at the site, to normalize the injected
	// density so the integral of the source is Amp.
	i, j, k := m.NodeCoords(bestN)
	w := m.Rule.Weights[i] * m.Rule.Weights[j] * m.Rule.Weights[k] * m.JacobianDet()
	peak := 2.0 // cycles across the domain; resolvable on any refinement
	return &PointSource{
		Elem: bestE, Node: bestN, Amp: amp,
		PeakFreq: peak, Delay: 1 / peak,
		scale: 1 / w,
	}
}

// AddTo injects the source value at time t into the nodal RHS array
// (pressure for acoustic runs, a velocity component for elastic ones).
func (ps *PointSource) AddTo(t float64, rhs []float64, nodesPerEl int) {
	rhs[ps.Elem*nodesPerEl+ps.Node] += ps.Amp * ps.scale * Ricker(ps.PeakFreq, ps.Delay, t)
}

// Receiver records the time history of one nodal value.
type Receiver struct {
	Elem, Node int
	Times      []float64
	Values     []float64
}

// NewReceiver locates the node closest to (x,y,z).
func NewReceiver(m *mesh.Mesh, x, y, z float64) *Receiver {
	bestE, bestN, bestD := 0, 0, math.Inf(1)
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < m.NodesPerEl; n++ {
			px, py, pz := m.NodePosition(e, n)
			d := (px-x)*(px-x) + (py-y)*(py-y) + (pz-z)*(pz-z)
			if d < bestD {
				bestE, bestN, bestD = e, n, d
			}
		}
	}
	return &Receiver{Elem: bestE, Node: bestN}
}

// Record appends the current nodal value at time t.
func (r *Receiver) Record(t float64, field []float64, nodesPerEl int) {
	r.Times = append(r.Times, t)
	r.Values = append(r.Values, field[r.Elem*nodesPerEl+r.Node])
}

// PeakAbs returns the maximum absolute recorded value and its time.
func (r *Receiver) PeakAbs() (t, v float64) {
	for i, x := range r.Values {
		if math.Abs(x) > math.Abs(v) {
			v, t = x, r.Times[i]
		}
	}
	return
}
