package dg

import (
	"fmt"
	"math"
)

// The temporal integration scheme. The paper states "There are five
// integration steps in each time-step" (Section 2.2) and that Integration
// "operates on (volume and flux) contributions to update the variables, and
// requires auxiliaries storage" (Figure 2) — exactly the structure of the
// five-stage fourth-order low-storage Runge-Kutta scheme of Carpenter &
// Kennedy (1994), the standard integrator for nodal dG wave solvers
// (Hesthaven & Warburton). The "auxiliaries" are the single low-storage
// register k.

// LSRK5A and LSRK5B are the Carpenter-Kennedy 4th-order 5-stage low-storage
// Runge-Kutta coefficients.
var (
	LSRK5A = [5]float64{
		0,
		-567301805773.0 / 1357537059087.0,
		-2404267990393.0 / 2016746695238.0,
		-3550918686646.0 / 2091501179385.0,
		-1275806237668.0 / 842570457699.0,
	}
	LSRK5B = [5]float64{
		1432997174477.0 / 9575080441755.0,
		5161836677717.0 / 13612068292357.0,
		1720146321549.0 / 2090206949498.0,
		3134564353537.0 / 4481467310338.0,
		2277821191437.0 / 14882151754819.0,
	}
	// LSRK5C gives the stage times (fraction of dt), needed when the RHS is
	// time-dependent (e.g. a source term).
	LSRK5C = [5]float64{
		0,
		1432997174477.0 / 9575080441755.0,
		2526269341429.0 / 6820363962896.0,
		2006345519317.0 / 3224310063776.0,
		2802321613138.0 / 2924317926251.0,
	}
)

// NumStages is the number of RHS evaluations (and Integration kernel
// launches) per time-step.
const NumStages = 5

// AcousticIntegrator advances an acoustic state with the low-storage RK
// scheme. It owns the auxiliaries (Table 1: "Temporary storage for unknown
// variables needed during the temporal integration step") and the
// contributions buffer the RHS kernels fill.
type AcousticIntegrator struct {
	Solver *AcousticSolver
	aux    *AcousticState // low-storage register ("auxiliaries")
	contr  *AcousticState // RHS output ("contributions")
	// Source, if non-nil, is evaluated at each stage time and added to the
	// pressure RHS (a point source smeared over its element).
	Source func(t float64, rhsP []float64)
}

// NewAcousticIntegrator allocates the integrator's storage.
func NewAcousticIntegrator(s *AcousticSolver) *AcousticIntegrator {
	return &AcousticIntegrator{
		Solver: s,
		aux:    NewAcousticState(s.Op.M),
		contr:  NewAcousticState(s.Op.M),
	}
}

// Step advances q from time t by dt in five stages.
func (it *AcousticIntegrator) Step(q *AcousticState, t, dt float64) {
	for s := 0; s < NumStages; s++ {
		it.Solver.RHS(q, it.contr)
		if it.Source != nil {
			it.Source(t+LSRK5C[s]*dt, it.contr.P)
		}
		// aux = A[s]*aux + dt*contr ; q += B[s]*aux  (the Integration kernel)
		it.aux.Scale(LSRK5A[s])
		it.aux.AddScaled(dt, it.contr)
		q.AddScaled(LSRK5B[s], it.aux)
	}
}

// Run advances q for steps time-steps starting at time t0 and returns the
// final time.
func (it *AcousticIntegrator) Run(q *AcousticState, t0, dt float64, steps int) float64 {
	t := t0
	for i := 0; i < steps; i++ {
		it.Step(q, t, dt)
		t += dt
	}
	return t
}

// ElasticIntegrator is the elastic counterpart of AcousticIntegrator.
type ElasticIntegrator struct {
	Solver *ElasticSolver
	aux    *ElasticState
	contr  *ElasticState
	Source func(t float64, rhsV [3][]float64)
}

// NewElasticIntegrator allocates the integrator's storage.
func NewElasticIntegrator(s *ElasticSolver) *ElasticIntegrator {
	return &ElasticIntegrator{
		Solver: s,
		aux:    NewElasticState(s.Op.M),
		contr:  NewElasticState(s.Op.M),
	}
}

// Step advances q from time t by dt in five stages.
func (it *ElasticIntegrator) Step(q *ElasticState, t, dt float64) {
	for s := 0; s < NumStages; s++ {
		it.Solver.RHS(q, it.contr)
		if it.Source != nil {
			it.Source(t+LSRK5C[s]*dt, it.contr.V)
		}
		it.aux.Scale(LSRK5A[s])
		it.aux.AddScaled(dt, it.contr)
		q.AddScaled(LSRK5B[s], it.aux)
	}
}

// Run advances q for steps time-steps starting at t0.
func (it *ElasticIntegrator) Run(q *ElasticState, t0, dt float64, steps int) float64 {
	t := t0
	for i := 0; i < steps; i++ {
		it.Step(q, t, dt)
		t += dt
	}
	return t
}

// ---------------------------------------------------------------------------
// Solver health guards (the top rung of the fault-recovery ladder)
// ---------------------------------------------------------------------------

// Slices returns every variable array of the state (for health checks and
// norm computations).
func (s *AcousticState) Slices() [][]float64 {
	return [][]float64{s.P, s.V[0], s.V[1], s.V[2]}
}

// Slices returns every variable array of the state.
func (s *ElasticState) Slices() [][]float64 {
	out := make([][]float64, 0, NumStress+3)
	for c := range s.S {
		out = append(out, s.S[c])
	}
	for d := range s.V {
		out = append(out, s.V[d])
	}
	return out
}

// Slices returns every variable array of the state.
func (s *MaxwellState) Slices() [][]float64 {
	return [][]float64{s.E[0], s.E[1], s.E[2], s.H[0], s.H[1], s.H[2]}
}

// CheckFinite reports whether every value in every slice is finite.
func CheckFinite(xs ...[]float64) bool {
	for _, x := range xs {
		for _, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
	}
	return true
}

// NormSq returns the summed squared l2 norm of the slices.
func NormSq(xs ...[]float64) float64 {
	var s float64
	for _, x := range xs {
		for _, v := range x {
			s += v * v
		}
	}
	return s
}

// HealthError reports a solver blow-up detected by a health guard: a
// non-finite value or squared-norm growth beyond the allowed factor.
type HealthError struct {
	Step   int     // time-step at which the check failed
	NormSq float64 // squared field norm at the check (NaN if non-finite)
	Reason string  // "non-finite" or "norm blow-up"
}

func (e *HealthError) Error() string {
	return fmt.Sprintf("dg: solver unhealthy at step %d: %s (|q|^2=%g)", e.Step, e.Reason, e.NormSq)
}

// CheckHealth evaluates the guard on a set of variable slices against a
// reference squared norm: nil when healthy, a *HealthError otherwise.
// factor <= 0 disables the norm-growth check (finiteness is always
// checked).
func CheckHealth(step int, refNormSq, factor float64, xs ...[]float64) error {
	if !CheckFinite(xs...) {
		return &HealthError{Step: step, NormSq: math.NaN(), Reason: "non-finite"}
	}
	n := NormSq(xs...)
	if factor > 0 && refNormSq > 0 && n > factor*refNormSq {
		return &HealthError{Step: step, NormSq: n, Reason: "norm blow-up"}
	}
	return nil
}

// RunGuarded advances q like Run, checking solver health every checkEvery
// steps (and at the end). On the first failed check it stops and returns
// the error along with the time reached; the reference norm is the state's
// norm at entry. This is the plain-solver counterpart of the Session-level
// checkpoint/rollback ladder (which can also rewind, not just stop).
func (it *AcousticIntegrator) RunGuarded(q *AcousticState, t0, dt float64, steps, checkEvery int, factor float64) (float64, error) {
	if checkEvery <= 0 {
		checkEvery = 1
	}
	ref := NormSq(q.Slices()...)
	t := t0
	for i := 0; i < steps; i++ {
		it.Step(q, t, dt)
		t += dt
		if (i+1)%checkEvery == 0 || i == steps-1 {
			if err := CheckHealth(i+1, ref, factor, q.Slices()...); err != nil {
				return t, err
			}
		}
	}
	return t, nil
}

// RunGuarded is the elastic counterpart of AcousticIntegrator.RunGuarded.
func (it *ElasticIntegrator) RunGuarded(q *ElasticState, t0, dt float64, steps, checkEvery int, factor float64) (float64, error) {
	if checkEvery <= 0 {
		checkEvery = 1
	}
	ref := NormSq(q.Slices()...)
	t := t0
	for i := 0; i < steps; i++ {
		it.Step(q, t, dt)
		t += dt
		if (i+1)%checkEvery == 0 || i == steps-1 {
			if err := CheckHealth(i+1, ref, factor, q.Slices()...); err != nil {
				return t, err
			}
		}
	}
	return t, nil
}
