package dg

import (
	"math"
	"testing"

	"wavepim/internal/material"
	"wavepim/internal/mesh"
)

var glassLike = material.Dielectric{Eps: 2.25, Mu: 1.0} // c = 2/3, eta = 2/3

func TestDielectricProperties(t *testing.T) {
	if c := glassLike.LightSpeed(); math.Abs(c-2.0/3) > 1e-15 {
		t.Errorf("c = %g want 2/3", c)
	}
	if z := glassLike.Impedance(); math.Abs(z-2.0/3) > 1e-15 {
		t.Errorf("eta = %g want 2/3", z)
	}
	if material.Vacuum.LightSpeed() != 1 {
		t.Error("vacuum c != 1 in natural units")
	}
}

func maxwellMaxErr(m *mesh.Mesh, q *MaxwellState, k int, tm float64, mat material.Dielectric) float64 {
	var worst float64
	nn := m.NodesPerEl
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < nn; n++ {
			x, _, _ := m.NodePosition(e, n)
			want := PlaneWaveEMAt(mat, k, x, tm)
			if d := math.Abs(q.E[1][e*nn+n] - want); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func TestMaxwellPlaneWavePropagation(t *testing.T) {
	for _, flux := range []FluxType{CentralFlux, RiemannFlux} {
		m := mesh.New(1, 8, true)
		s := NewMaxwellSolver(m, glassLike, flux)
		q := NewMaxwellState(m)
		PlaneWaveEM(m, glassLike, 1, q)
		it := NewMaxwellIntegrator(s)
		dt := s.MaxStableDt(0.4)
		const steps = 50
		it.Run(q, dt, steps)
		if err := maxwellMaxErr(m, q, 1, dt*steps, glassLike); err > 3e-4 {
			t.Errorf("flux=%v: EM plane wave error %g", flux, err)
		}
	}
}

func TestMaxwellEnergyConservedCentral(t *testing.T) {
	m := mesh.New(1, 6, true)
	s := NewMaxwellSolver(m, glassLike, CentralFlux)
	q := NewMaxwellState(m)
	PlaneWaveEM(m, glassLike, 1, q)
	it := NewMaxwellIntegrator(s)
	e0 := s.Energy(q)
	if e0 <= 0 {
		t.Fatal("nonpositive initial energy")
	}
	it.Run(q, s.MaxStableDt(0.3), 100)
	e1 := s.Energy(q)
	if rel := math.Abs(e1-e0) / e0; rel > 1e-6 {
		t.Errorf("central flux EM energy drift %g", rel)
	}
}

func TestMaxwellEnergyNeverGrowsRiemann(t *testing.T) {
	m := mesh.New(1, 4, true)
	s := NewMaxwellSolver(m, glassLike, RiemannFlux)
	q := NewMaxwellState(m)
	PlaneWaveEM(m, glassLike, 2, q) // under-resolved
	nn := m.NodesPerEl
	// Mix all six components.
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < nn; n++ {
			x, y, z := m.NodePosition(e, n)
			i := e*nn + n
			q.E[0][i] = 0.2 * math.Sin(2*math.Pi*(y+z))
			q.E[2][i] = 0.3 * math.Cos(2*math.Pi*y)
			q.H[0][i] = -0.1 * math.Sin(2*math.Pi*z)
			q.H[1][i] = 0.15 * math.Cos(2*math.Pi*(x+z))
		}
	}
	it := NewMaxwellIntegrator(s)
	prev := s.Energy(q)
	dt := s.MaxStableDt(0.3)
	for i := 0; i < 15; i++ {
		it.Run(q, dt, 5)
		e := s.Energy(q)
		if e > prev*(1+1e-9) {
			t.Fatalf("Riemann EM flux grew energy at iter %d: %g -> %g", i, prev, e)
		}
		prev = e
	}
}

// Divergence preservation: with div E = div H = 0 initially (plane waves),
// the discrete solution's fields stay divergence-free to discretization
// accuracy. Checked through a weaker invariant that is exact for the
// scheme: a uniform static field is a steady state.
func TestMaxwellUniformFieldIsSteady(t *testing.T) {
	for _, flux := range []FluxType{CentralFlux, RiemannFlux} {
		m := mesh.New(1, 5, true)
		s := NewMaxwellSolver(m, glassLike, flux)
		q := NewMaxwellState(m)
		for i := range q.E[0] {
			q.E[0][i], q.E[1][i], q.E[2][i] = 1, -2, 0.5
			q.H[0][i], q.H[1][i], q.H[2][i] = 3, 0.25, -1
		}
		rhs := NewMaxwellState(m)
		s.RHS(q, rhs)
		for d := 0; d < 3; d++ {
			for i := range rhs.E[d] {
				if math.Abs(rhs.E[d][i]) > 1e-11 || math.Abs(rhs.H[d][i]) > 1e-11 {
					t.Fatalf("flux=%v: uniform field has nonzero RHS", flux)
				}
			}
		}
	}
}

// All three cyclic channel orientations: plane waves along y and z
// propagate at the same speed as along x (isotropy of the discretization).
func TestMaxwellIsotropy(t *testing.T) {
	m := mesh.New(1, 6, true)
	s := NewMaxwellSolver(m, glassLike, RiemannFlux)
	dt := s.MaxStableDt(0.3)
	const steps = 30
	// Wave along +z with E along x: Ex = sin(2 pi z), Hy = +Ex/eta
	// (check via Maxwell: dEx/dt = -(1/eps) dHy/dz, so f(z-ct) needs
	// Hy = f/eta; equivalently E x H = x^ x y^ = +z^).
	q := NewMaxwellState(m)
	eta := glassLike.Impedance()
	nn := m.NodesPerEl
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < nn; n++ {
			_, _, z := m.NodePosition(e, n)
			ex := math.Sin(2 * math.Pi * z)
			q.E[0][e*nn+n] = ex
			q.H[1][e*nn+n] = ex / eta
		}
	}
	it := NewMaxwellIntegrator(s)
	it.Run(q, dt, steps)
	var worstZ float64
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < nn; n++ {
			_, _, z := m.NodePosition(e, n)
			want := PlaneWaveEMAt(glassLike, 1, z, dt*steps)
			if d := math.Abs(q.E[0][e*nn+n] - want); d > worstZ {
				worstZ = d
			}
		}
	}
	// Reference: the x-propagating wave at identical resolution.
	qx := NewMaxwellState(m)
	PlaneWaveEM(m, glassLike, 1, qx)
	itx := NewMaxwellIntegrator(s)
	itx.Run(qx, dt, steps)
	worstX := maxwellMaxErr(m, qx, 1, dt*steps, glassLike)
	// Isotropy: the two directions err alike (the absolute size is set by
	// the np=6 resolution, not the orientation).
	if worstZ > 2.5*worstX+1e-12 || worstX > 2.5*worstZ+1e-12 {
		t.Errorf("anisotropic errors: x-wave %g vs z-wave %g", worstX, worstZ)
	}
	if worstZ > 2e-2 {
		t.Errorf("z-propagating wave error %g too large", worstZ)
	}
}

func TestMaxwellStateOps(t *testing.T) {
	m := mesh.New(0, 3, true)
	a := NewMaxwellState(m)
	for i := range a.E[0] {
		a.E[0][i] = float64(i)
		a.H[2][i] = -float64(i)
	}
	b := a.Copy()
	a.Scale(2)
	a.AddScaled(1, b)
	if a.E[0][2] != 6 || a.H[2][2] != -6 {
		t.Error("state ops wrong")
	}
}

func TestCyc(t *testing.T) {
	for a, want := range [][2]int{{1, 2}, {2, 0}, {0, 1}} {
		b, c := cyc(a)
		if b != want[0] || c != want[1] {
			t.Errorf("cyc(%d) = (%d,%d) want %v", a, b, c, want)
		}
	}
}
