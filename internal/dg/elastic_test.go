package dg

import (
	"math"
	"testing"

	"wavepim/internal/material"
	"wavepim/internal/mesh"
)

// rockLike has cp = 2, cs = 1.
var rockLike = material.Elastic{Lambda: 2.0, Mu: 1.0, Rho: 1.0}

func newElastic(t testing.TB, ref, np int, flux FluxType) (*mesh.Mesh, *ElasticSolver) {
	t.Helper()
	m := mesh.New(ref, np, true)
	mat := material.UniformElastic(m.NumElem, rockLike)
	return m, NewElasticSolver(m, mat, flux)
}

func TestElasticMaterialSpeeds(t *testing.T) {
	if c := rockLike.PWaveSpeed(); math.Abs(c-2) > 1e-15 {
		t.Errorf("cp=%g want 2", c)
	}
	if c := rockLike.SWaveSpeed(); math.Abs(c-1) > 1e-15 {
		t.Errorf("cs=%g want 1", c)
	}
	if z := rockLike.PImpedance(); math.Abs(z-2) > 1e-15 {
		t.Errorf("Zp=%g want 2", z)
	}
}

func elasticMaxErrV(m *mesh.Mesh, q *ElasticState, comp, k int, c float64, t float64) float64 {
	var worst float64
	nn := m.NodesPerEl
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < nn; n++ {
			x, _, _ := m.NodePosition(e, n)
			want := math.Sin(2 * math.Pi * float64(k) * (x - c*t))
			if err := math.Abs(q.V[comp][e*nn+n] - want); err > worst {
				worst = err
			}
		}
	}
	return worst
}

func TestElasticPlanePWave(t *testing.T) {
	for _, flux := range []FluxType{CentralFlux, RiemannFlux} {
		m, s := newElastic(t, 1, 8, flux)
		q := NewElasticState(m)
		PlaneWavePX(m, rockLike, 1, q)
		it := NewElasticIntegrator(s)
		dt := s.MaxStableDt(0.4)
		tEnd := it.Run(q, 0, dt, 50)
		if err := elasticMaxErrV(m, q, 0, 1, rockLike.PWaveSpeed(), tEnd); err > 5e-4 {
			t.Errorf("flux=%v: P-wave error %g, want < 5e-4", flux, err)
		}
	}
}

func TestElasticPlaneSWave(t *testing.T) {
	for _, flux := range []FluxType{CentralFlux, RiemannFlux} {
		m, s := newElastic(t, 1, 8, flux)
		q := NewElasticState(m)
		PlaneWaveSX(m, rockLike, 1, q)
		it := NewElasticIntegrator(s)
		dt := s.MaxStableDt(0.4)
		tEnd := it.Run(q, 0, dt, 50)
		if err := elasticMaxErrV(m, q, 1, 1, rockLike.SWaveSpeed(), tEnd); err > 5e-4 {
			t.Errorf("flux=%v: S-wave error %g, want < 5e-4", flux, err)
		}
	}
}

func TestElasticEnergyConservedCentralFlux(t *testing.T) {
	m, s := newElastic(t, 1, 6, CentralFlux)
	q := NewElasticState(m)
	PlaneWavePX(m, rockLike, 1, q)
	it := NewElasticIntegrator(s)
	e0 := s.Energy(q)
	if e0 <= 0 {
		t.Fatalf("initial energy %g must be positive", e0)
	}
	it.Run(q, 0, s.MaxStableDt(0.2), 100)
	e1 := s.Energy(q)
	if rel := math.Abs(e1-e0) / e0; rel > 1e-5 {
		t.Errorf("central flux energy drift %g after 100 steps", rel)
	}
}

func TestElasticEnergyNeverGrowsRiemann(t *testing.T) {
	m, s := newElastic(t, 1, 4, RiemannFlux)
	q := NewElasticState(m)
	PlaneWavePX(m, rockLike, 2, q) // under-resolved
	// Mix in an S-wave so both impedance channels are exercised.
	nn := m.NodesPerEl
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < nn; n++ {
			x, _, _ := m.NodePosition(e, n)
			vy := 0.5 * math.Sin(4*math.Pi*x)
			i := e*nn + n
			q.V[1][i] += vy
			q.S[SXY][i] += -rockLike.Rho * rockLike.SWaveSpeed() * vy
		}
	}
	it := NewElasticIntegrator(s)
	prev := s.Energy(q)
	dt := s.MaxStableDt(0.3)
	for i := 0; i < 20; i++ {
		it.Run(q, 0, dt, 5)
		e := s.Energy(q)
		if e > prev*(1+1e-9) {
			t.Fatalf("Riemann flux increased elastic energy at iter %d: %g -> %g", i, prev, e)
		}
		prev = e
	}
}

func TestElasticConstantVelocityIsSteadyPeriodic(t *testing.T) {
	// A uniform translation (constant v, zero stress) has zero RHS on a
	// periodic mesh.
	for _, flux := range []FluxType{CentralFlux, RiemannFlux} {
		m, s := newElastic(t, 1, 5, flux)
		q := NewElasticState(m)
		for i := range q.V[0] {
			q.V[0][i], q.V[1][i], q.V[2][i] = 1.5, -0.5, 2.0
		}
		rhs := NewElasticState(m)
		s.RHS(q, rhs)
		for c := 0; c < NumStress; c++ {
			for i := range rhs.S[c] {
				if math.Abs(rhs.S[c][i]) > 1e-11 {
					t.Fatalf("flux=%v: stress RHS %d nonzero: %g", flux, c, rhs.S[c][i])
				}
			}
		}
		for d := 0; d < 3; d++ {
			for i := range rhs.V[d] {
				if math.Abs(rhs.V[d][i]) > 1e-11 {
					t.Fatalf("flux=%v: velocity RHS nonzero: %g", flux, rhs.V[d][i])
				}
			}
		}
	}
}

func TestElasticHydrostaticLikeAcoustic(t *testing.T) {
	// With mu = 0 the elastic system degenerates to the acoustic one
	// (sxx = syy = szz = -p, kappa = lambda). Evolve both and compare.
	fluid := material.Elastic{Lambda: 2.25, Mu: 0, Rho: 1.0}
	m := mesh.New(1, 6, true)
	emat := material.UniformElastic(m.NumElem, fluid)
	es := NewElasticSolver(m, emat, CentralFlux)
	eq := NewElasticState(m)

	amat := material.UniformAcoustic(m.NumElem, material.Acoustic{Kappa: 2.25, Rho: 1.0})
	as := NewAcousticSolver(m, amat, CentralFlux)
	aq := NewAcousticState(m)
	PlaneWaveX(m, material.Acoustic{Kappa: 2.25, Rho: 1.0}, 1, aq)

	nn := m.NodesPerEl
	for i := 0; i < m.NumElem*nn; i++ {
		eq.S[SXX][i] = -aq.P[i]
		eq.S[SYY][i] = -aq.P[i]
		eq.S[SZZ][i] = -aq.P[i]
		eq.V[0][i] = aq.V[0][i]
	}
	dt := as.MaxStableDt(0.3)
	ait := NewAcousticIntegrator(as)
	eit := NewElasticIntegrator(es)
	ait.Run(aq, 0, dt, 30)
	eit.Run(eq, 0, dt, 30)
	var worst float64
	for i := 0; i < m.NumElem*nn; i++ {
		if d := math.Abs(-eq.S[SXX][i] - aq.P[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-10 {
		t.Errorf("mu=0 elastic diverged from acoustic by %g", worst)
	}
}

func TestElasticFreeSurfaceTractionBounded(t *testing.T) {
	// Non-periodic box with a free surface: energy must not grow.
	m := mesh.New(1, 5, false)
	mat := material.UniformElastic(m.NumElem, rockLike)
	s := NewElasticSolver(m, mat, RiemannFlux)
	q := NewElasticState(m)
	nn := m.NodesPerEl
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < nn; n++ {
			x, y, z := m.NodePosition(e, n)
			r2 := (x-0.5)*(x-0.5) + (y-0.5)*(y-0.5) + (z-0.5)*(z-0.5)
			q.V[2][e*nn+n] = math.Exp(-r2 / 0.05)
		}
	}
	e0 := s.Energy(q)
	it := NewElasticIntegrator(s)
	dt := s.MaxStableDt(0.3)
	prev := e0
	for i := 0; i < 10; i++ {
		it.Run(q, 0, dt, 5)
		e := s.Energy(q)
		if e > prev*(1+1e-9) {
			t.Fatalf("free surface grew energy: %g -> %g", prev, e)
		}
		prev = e
	}
}

func TestElasticStateOps(t *testing.T) {
	m := mesh.New(0, 3, true)
	a := NewElasticState(m)
	for i := range a.S[SXY] {
		a.S[SXY][i] = float64(i)
		a.V[0][i] = -float64(i)
	}
	b := a.Copy()
	a.Scale(2)
	a.AddScaled(1, b)
	if a.S[SXY][2] != 6 || a.V[0][2] != -6 {
		t.Errorf("state ops wrong: %g %g", a.S[SXY][2], a.V[0][2])
	}
	if b.S[SXY][2] != 2 {
		t.Error("Copy not deep")
	}
}

func TestElasticRiemannDtMatchesCFL(t *testing.T) {
	m, s := newElastic(t, 2, 8, RiemannFlux)
	dt := s.MaxStableDt(0.5)
	minDx := (m.Rule.Points[1] - m.Rule.Points[0]) * m.H / 2
	want := 0.5 * minDx / 2.0 // cp = 2
	if math.Abs(dt-want) > 1e-15 {
		t.Errorf("dt=%g want %g", dt, want)
	}
}
