// Package opcount derives analytic operation counts (floating-point ops,
// bytes moved, special-function ops, executed instructions) for the three dG
// kernels of Figure 2 on each benchmark of Table 6. The counts are computed
// from the discretization itself — nodes per element, stencil widths, flux
// arithmetic — and drive both the Table 6 reproduction and the GPU roofline
// model of internal/gpu.
package opcount

import (
	"fmt"

	"wavepim/internal/mesh"
)

// Equation identifies the PDE system and flux solver of a benchmark group
// (Section 7.2's three groups).
type Equation int

const (
	Acoustic Equation = iota
	ElasticCentral
	ElasticRiemann
	// Maxwell is the reproduction's extension benchmark (not in the
	// paper's Table 6): the electromagnetic system of Section 2.1's
	// structural-similarity claim, mapped through the same pipeline.
	Maxwell
)

func (e Equation) String() string {
	switch e {
	case Acoustic:
		return "Acoustic"
	case ElasticCentral:
		return "Elastic-Central"
	case ElasticRiemann:
		return "Elastic-Riemann"
	case Maxwell:
		return "Maxwell"
	}
	return fmt.Sprintf("Equation(%d)", int(e))
}

// NumVars returns the unknown variables per node: 4 for acoustic (p, v),
// 9 for elastic (6 stress + 3 velocity) — Section 2.1 — and 6 for the
// Maxwell extension (E, H).
func (e Equation) NumVars() int {
	switch e {
	case Acoustic:
		return 4
	case Maxwell:
		return 6
	default:
		return 9
	}
}

// Benchmark is one of the paper's six evaluation workloads.
type Benchmark struct {
	Eq         Equation
	Refinement int
}

// Name renders the paper's benchmark naming (e.g. "Acoustic_4",
// "Elastic-Riemann_5").
func (b Benchmark) Name() string { return fmt.Sprintf("%s_%d", b.Eq, b.Refinement) }

// NumElements is (2^n)^3.
func (b Benchmark) NumElements() int {
	e := 1 << b.Refinement
	return e * e * e
}

// All six benchmarks of Table 6, in the paper's order.
func AllBenchmarks() []Benchmark {
	return []Benchmark{
		{Acoustic, 4},
		{ElasticCentral, 4},
		{ElasticRiemann, 4},
		{Acoustic, 5},
		{ElasticCentral, 5},
		{ElasticRiemann, 5},
	}
}

// Np is the GLL nodes per axis of the paper's element (512-node elements).
const Np = 8

// NodesPerElem is Np^3 = 512.
const NodesPerElem = Np * Np * Np

// NodesPerFace is Np^2 = 64.
const NodesPerFace = Np * Np

// WordBytes is the 32-bit data precision used by both platforms.
const WordBytes = 4

// Kernel identifies one of the three primary kernels.
type Kernel int

const (
	KernelVolume Kernel = iota
	KernelFlux
	KernelIntegration
	NumKernels
)

func (k Kernel) String() string {
	switch k {
	case KernelVolume:
		return "Volume"
	case KernelFlux:
		return "Flux"
	case KernelIntegration:
		return "Integration"
	}
	return fmt.Sprintf("Kernel(%d)", int(k))
}

// Cost is the per-element cost of launching one kernel once.
type Cost struct {
	FLOPs      int64 // ordinary single-precision operations
	SpecialOps int64 // sqrt / reciprocal (flop_count_sp_special)
	ReadBytes  int64 // DRAM traffic in
	WriteBytes int64 // DRAM traffic out
}

// Total bytes moved.
func (c Cost) Bytes() int64 { return c.ReadBytes + c.WriteBytes }

// Add returns the sum of two costs.
func (c Cost) Add(o Cost) Cost {
	return Cost{
		FLOPs:      c.FLOPs + o.FLOPs,
		SpecialOps: c.SpecialOps + o.SpecialOps,
		ReadBytes:  c.ReadBytes + o.ReadBytes,
		WriteBytes: c.WriteBytes + o.WriteBytes,
	}
}

// Scale returns the cost multiplied by n.
func (c Cost) Scale(n int64) Cost {
	return Cost{FLOPs: c.FLOPs * n, SpecialOps: c.SpecialOps * n,
		ReadBytes: c.ReadBytes * n, WriteBytes: c.WriteBytes * n}
}

// diffFLOPs is the cost of one tensor-product derivative over a full
// element: for every node, a dot product of length Np (Np multiplies,
// Np-1 adds) with the dshape row, plus the Jacobian scale.
const diffFLOPs = NodesPerElem * (2*Np - 1 + 1)

// PerElement returns the cost of one launch of kernel k on one element of
// equation eq. The counts mirror internal/dg's reference implementation
// operation for operation.
func PerElement(eq Equation, k Kernel) Cost {
	nv := int64(eq.NumVars())
	switch k {
	case KernelVolume:
		var flops int64
		switch eq {
		case Acoustic:
			// div v: 3 derivatives + 2 adds/node; rhs_p: 1 mul/node.
			// grad p: 3 derivatives; rhs_v: 1 mul/node each.
			flops = 6*diffFLOPs + NodesPerElem*(2+1+3)
		case Maxwell:
			// Two curls: 12 derivatives plus a subtract and scale per
			// component per field.
			flops = 12*diffFLOPs + NodesPerElem*(6*2)
		default:
			// grad v: 9 derivatives; stress combine ~ 6 comps x 4 flops.
			// div S: 9 derivatives (6 unique comps re-read); velocity
			// combine 3 muls.
			flops = 18*diffFLOPs + NodesPerElem*(6*4+3)
		}
		return Cost{
			FLOPs: flops,
			// Read all variables + constants (dshape Np*Np, jacobians,
			// materials; constant-memory cached once per SM, amortized).
			ReadBytes: nv*NodesPerElem*WordBytes + (Np*Np+16)*WordBytes,
			// Write all contributions.
			WriteBytes: nv * NodesPerElem * WordBytes,
		}
	case KernelFlux:
		faceNodes := int64(6 * NodesPerFace)
		var perNode int64
		var special int64
		switch eq {
		case Acoustic:
			// Central part: averages + 2 lifted corrections ~ 12 flops;
			// Riemann penalties + impedance terms ~ 12 more. The acoustic
			// benchmark group uses the Riemann solver's central variant in
			// the paper's GPU code; keep the central cost.
			perNode = 18
		case Maxwell:
			// Two acoustic-analogue tangential channels per face.
			perNode = 36
		case ElasticCentral:
			// Tractions (2x3 muls), averages (9), six stress corrections
			// (~5 flops each), three velocity corrections (~3 each).
			perNode = 54
		case ElasticRiemann:
			// Adds normal/tangential splits and four impedance penalty
			// channels.
			perNode = 130
			// sqrt + reciprocal per material pair, evaluated per face in
			// the GPU implementation.
			special = faceNodes / NodesPerFace * 4
		}
		return Cost{
			FLOPs:      faceNodes * perNode,
			SpecialOps: special,
			// Own face values + neighbor face values for all variables.
			ReadBytes: 2 * faceNodes * nv * WordBytes,
			// Accumulate into the contributions of the face nodes.
			WriteBytes: faceNodes * nv * WordBytes,
		}
	case KernelIntegration:
		// aux = A*aux + dt*contr (3 flops), q += B*aux (2 flops), per
		// variable per node.
		return Cost{
			FLOPs: nv * NodesPerElem * 5,
			// Read contributions, aux, variables; write aux, variables.
			ReadBytes:  3 * nv * NodesPerElem * WordBytes,
			WriteBytes: 2 * nv * NodesPerElem * WordBytes,
		}
	}
	panic(fmt.Sprintf("opcount: unknown kernel %d", int(k)))
}

// PerLaunch returns the whole-model cost of launching kernel k once on
// benchmark b.
func PerLaunch(b Benchmark, k Kernel) Cost {
	return PerElement(b.Eq, k).Scale(int64(b.NumElements()))
}

// OneLaunchEach returns the benchmark cost with each kernel launched once —
// the accounting used for Table 6 ("Values are the total from each kernel
// launched once").
func OneLaunchEach(b Benchmark) Cost {
	var c Cost
	for k := Kernel(0); k < NumKernels; k++ {
		c = c.Add(PerLaunch(b, k))
	}
	return c
}

// InstructionExpansion is the executed-thread-instructions per FLOP ratio of
// the paper's fused GPU implementation, from Table 6's own columns
// (instructions / FP ops): 5.47 for acoustic, 3.50 for elastic-central,
// 6.70 for elastic-Riemann. These are nvprof-measured constants — the only
// Table 6 quantity we cannot derive from the discretization (they fold in
// address arithmetic, predication and divergence of the authors' CUDA
// code) — and are constant across refinement levels in the paper's data.
func InstructionExpansion(eq Equation) float64 {
	switch eq {
	case Acoustic:
		return 5.47
	case ElasticCentral, Maxwell: // Maxwell uses an upwind solver but the
		// acoustic-like channel structure; the central elastic expansion
		// is the closest published analogue.
		return 3.50
	default:
		return 6.70
	}
}

// Instructions estimates the executed thread-level instruction count for
// one launch of each kernel on benchmark b.
func Instructions(b Benchmark) int64 {
	c := OneLaunchEach(b)
	return int64(float64(c.FLOPs+c.SpecialOps) * InstructionExpansion(b.Eq))
}

// PaperTable6 records the published values for comparison in tests and in
// EXPERIMENTS.md.
type PaperRow struct {
	Name         string
	Elements     int
	Instructions int64
	FPOps        int64
}

// PaperTable6 returns Table 6 exactly as printed in the paper.
func PaperTable6() []PaperRow {
	return []PaperRow{
		{"Acoustic_4", 4096, 2140930048, 391380992},
		{"Elastic-Central_4", 4096, 3465543680, 990117888},
		{"Elastic-Riemann_4", 4096, 9870131200, 1472200704},
		{"Acoustic_5", 32768, 17127440384, 3131047936},
		{"Elastic-Central_5", 32768, 27724349440, 7920943104},
		{"Elastic-Riemann_5", 32768, 78960159424, 11777661440},
	}
}

// FaceCount returns how many interior faces the benchmark's mesh has; used
// by flux traffic models. Periodic accounting (every element has 6
// neighbors) matches the paper's "up-to 6 neighboring elements" worst case.
func FaceCount(b Benchmark) int64 {
	return int64(b.NumElements()) * 6
}

// MeshFor builds the benchmark's mesh (periodic, Np nodes per axis).
// Refinement 5 meshes are large (32768 elements); callers that only need
// counts should use NumElements instead.
func MeshFor(b Benchmark) *mesh.Mesh {
	return mesh.New(b.Refinement, Np, true)
}
