package opcount

import (
	"testing"
)

func TestBenchmarkNamesAndSizes(t *testing.T) {
	bs := AllBenchmarks()
	if len(bs) != 6 {
		t.Fatalf("want 6 benchmarks, got %d", len(bs))
	}
	wantNames := []string{
		"Acoustic_4", "Elastic-Central_4", "Elastic-Riemann_4",
		"Acoustic_5", "Elastic-Central_5", "Elastic-Riemann_5",
	}
	wantElems := []int{4096, 4096, 4096, 32768, 32768, 32768}
	for i, b := range bs {
		if b.Name() != wantNames[i] {
			t.Errorf("benchmark %d name %q want %q", i, b.Name(), wantNames[i])
		}
		if b.NumElements() != wantElems[i] {
			t.Errorf("%s: %d elements, want %d", b.Name(), b.NumElements(), wantElems[i])
		}
	}
}

func TestNumVars(t *testing.T) {
	if Acoustic.NumVars() != 4 {
		t.Error("acoustic has 4 variables (p, vx, vy, vz)")
	}
	if ElasticCentral.NumVars() != 9 || ElasticRiemann.NumVars() != 9 {
		t.Error("elastic has 9 variables (6 stress + 3 velocity)")
	}
}

// The level-5 cost must be exactly 8x the level-4 cost (8x the elements) —
// a relation Table 6's published numbers also satisfy exactly.
func TestLevel5IsEightTimesLevel4(t *testing.T) {
	for _, eq := range []Equation{Acoustic, ElasticCentral, ElasticRiemann} {
		c4 := OneLaunchEach(Benchmark{eq, 4})
		c5 := OneLaunchEach(Benchmark{eq, 5})
		if c5.FLOPs != 8*c4.FLOPs || c5.Bytes() != 8*c4.Bytes() {
			t.Errorf("%v: level5 != 8x level4", eq)
		}
	}
}

// Our analytic FP-op counts must land within 2x of the paper's
// nvprof-measured values for every benchmark (exact agreement is impossible
// without the authors' CUDA source; the shape — ordering and ratios between
// benchmarks — is what matters downstream).
func TestFPOpsWithinFactorOfPaper(t *testing.T) {
	paper := PaperTable6()
	for i, b := range AllBenchmarks() {
		got := OneLaunchEach(b).FLOPs
		want := paper[i].FPOps
		ratio := float64(got) / float64(want)
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%s: analytic FLOPs %d vs paper %d (ratio %.2f), want within 2x",
				b.Name(), got, want, ratio)
		}
	}
}

// Ordering: elastic-central > acoustic, elastic-riemann > elastic-central
// in both FLOPs and instructions, at both levels — the qualitative relation
// the evaluation depends on.
func TestBenchmarkOrdering(t *testing.T) {
	for _, ref := range []int{4, 5} {
		ac := OneLaunchEach(Benchmark{Acoustic, ref}).FLOPs
		ec := OneLaunchEach(Benchmark{ElasticCentral, ref}).FLOPs
		er := OneLaunchEach(Benchmark{ElasticRiemann, ref}).FLOPs
		if !(ac < ec && ec < er) {
			t.Errorf("level %d: FLOP ordering wrong: %d %d %d", ref, ac, ec, er)
		}
		ia := Instructions(Benchmark{Acoustic, ref})
		ie := Instructions(Benchmark{ElasticCentral, ref})
		ir := Instructions(Benchmark{ElasticRiemann, ref})
		if !(ia < ie && ie < ir) {
			t.Errorf("level %d: instruction ordering wrong: %d %d %d", ref, ia, ie, ir)
		}
	}
}

func TestInstructionsWithinFactorOfPaper(t *testing.T) {
	paper := PaperTable6()
	for i, b := range AllBenchmarks() {
		got := Instructions(b)
		want := paper[i].Instructions
		ratio := float64(got) / float64(want)
		if ratio < 0.45 || ratio > 2.2 {
			t.Errorf("%s: instructions %d vs paper %d (ratio %.2f)",
				b.Name(), got, want, ratio)
		}
	}
}

func TestIntegrationIsMemoryBound(t *testing.T) {
	// The paper: "the Integration kernel does not scale so well ... since
	// the memory accesses dominate this kernel". Arithmetic intensity of
	// Integration must be far below Volume's.
	for _, eq := range []Equation{Acoustic, ElasticCentral} {
		vol := PerElement(eq, KernelVolume)
		integ := PerElement(eq, KernelIntegration)
		aiVol := float64(vol.FLOPs) / float64(vol.Bytes())
		aiInt := float64(integ.FLOPs) / float64(integ.Bytes())
		if aiInt*4 > aiVol {
			t.Errorf("%v: Integration AI %.3f not well below Volume AI %.3f", eq, aiInt, aiVol)
		}
	}
}

func TestRiemannHasSpecialOps(t *testing.T) {
	if PerElement(ElasticRiemann, KernelFlux).SpecialOps == 0 {
		t.Error("Riemann flux must include sqrt/inverse special ops (the ones Wave-PIM offloads to the host)")
	}
	if PerElement(Acoustic, KernelFlux).SpecialOps != 0 {
		t.Error("central-style acoustic flux should not need special ops per launch")
	}
}

func TestCostArithmetic(t *testing.T) {
	a := Cost{FLOPs: 1, SpecialOps: 2, ReadBytes: 3, WriteBytes: 4}
	b := a.Add(a)
	if b.FLOPs != 2 || b.WriteBytes != 8 || b.Bytes() != 14 {
		t.Error("Add/Bytes wrong")
	}
	c := a.Scale(3)
	if c.SpecialOps != 6 || c.ReadBytes != 9 {
		t.Error("Scale wrong")
	}
}

func TestKernelStrings(t *testing.T) {
	if KernelVolume.String() != "Volume" || KernelFlux.String() != "Flux" ||
		KernelIntegration.String() != "Integration" {
		t.Error("kernel names wrong")
	}
}
