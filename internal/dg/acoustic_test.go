package dg

import (
	"math"
	"testing"

	"wavepim/internal/material"
	"wavepim/internal/mesh"
)

var waterLike = material.Acoustic{Kappa: 2.25, Rho: 1.0} // c = 1.5

func newAcoustic(t testing.TB, ref, np int, flux FluxType) (*mesh.Mesh, *AcousticSolver) {
	t.Helper()
	m := mesh.New(ref, np, true)
	mat := material.UniformAcoustic(m.NumElem, waterLike)
	return m, NewAcousticSolver(m, mat, flux)
}

// maxErr compares computed pressure against the analytic plane wave.
func acousticMaxErr(m *mesh.Mesh, q *AcousticState, k int, t float64) float64 {
	var worst float64
	nn := m.NodesPerEl
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < nn; n++ {
			x, _, _ := m.NodePosition(e, n)
			want := PlaneWaveXAt(waterLike, k, x, t)
			if err := math.Abs(q.P[e*nn+n] - want); err > worst {
				worst = err
			}
		}
	}
	return worst
}

func TestAcousticPlaneWavePropagation(t *testing.T) {
	for _, flux := range []FluxType{CentralFlux, RiemannFlux} {
		m, s := newAcoustic(t, 1, 8, flux)
		q := NewAcousticState(m)
		PlaneWaveX(m, waterLike, 1, q)
		it := NewAcousticIntegrator(s)
		dt := s.MaxStableDt(0.4)
		steps := 50
		tEnd := it.Run(q, 0, dt, steps)
		if err := acousticMaxErr(m, q, 1, tEnd); err > 2e-4 {
			t.Errorf("flux=%v: plane wave error %g after %d steps, want < 2e-4", flux, err, steps)
		}
	}
}

func TestAcousticTemporalConvergenceOrder(t *testing.T) {
	// Halving dt should shrink the time-discretization error by ~2^4 for
	// the 4th-order LSRK scheme. Compare against a dt-refined reference to
	// factor out the (fixed) spatial error.
	m, s := newAcoustic(t, 1, 6, RiemannFlux)
	tEnd := 0.08
	solve := func(steps int) *AcousticState {
		q := NewAcousticState(m)
		PlaneWaveX(m, waterLike, 1, q)
		it := NewAcousticIntegrator(s)
		it.Run(q, 0, tEnd/float64(steps), steps)
		return q
	}
	ref := solve(256)
	diff := func(a, b *AcousticState) float64 {
		var worst float64
		for i := range a.P {
			if d := math.Abs(a.P[i] - b.P[i]); d > worst {
				worst = d
			}
		}
		return worst
	}
	e1 := diff(solve(16), ref)
	e2 := diff(solve(32), ref)
	order := math.Log2(e1 / e2)
	if order < 3.5 || order > 5.5 {
		t.Errorf("observed temporal order %.2f (e1=%g e2=%g), want ~4", order, e1, e2)
	}
}

func TestAcousticEnergyConservedCentralFlux(t *testing.T) {
	m, s := newAcoustic(t, 1, 6, CentralFlux)
	q := NewAcousticState(m)
	PlaneWaveX(m, waterLike, 1, q)
	it := NewAcousticIntegrator(s)
	e0 := s.Energy(q)
	dt := s.MaxStableDt(0.3)
	it.Run(q, 0, dt, 100)
	e1 := s.Energy(q)
	if rel := math.Abs(e1-e0) / e0; rel > 1e-6 {
		t.Errorf("central flux energy drift %g after 100 steps, want < 1e-6", rel)
	}
	if e0 <= 0 {
		t.Fatalf("initial energy %g must be positive", e0)
	}
}

func TestAcousticEnergyDissipatedRiemannFlux(t *testing.T) {
	// Upwinding must never create energy, and on an under-resolved field it
	// must strictly dissipate.
	m, s := newAcoustic(t, 1, 4, RiemannFlux) // coarse: dissipation visible
	q := NewAcousticState(m)
	PlaneWaveX(m, waterLike, 2, q) // under-resolved at np=4
	it := NewAcousticIntegrator(s)
	e0 := s.Energy(q)
	dt := s.MaxStableDt(0.3)
	prev := e0
	for i := 0; i < 20; i++ {
		it.Run(q, 0, dt, 5)
		e := s.Energy(q)
		if e > prev*(1+1e-9) {
			t.Fatalf("Riemann flux increased energy at iter %d: %g -> %g", i, prev, e)
		}
		prev = e
	}
	if prev >= e0*0.9999 {
		t.Errorf("Riemann flux on under-resolved wave dissipated only to %g of %g", prev, e0)
	}
}

func TestAcousticZeroStateStaysZero(t *testing.T) {
	m, s := newAcoustic(t, 1, 4, RiemannFlux)
	q := NewAcousticState(m)
	it := NewAcousticIntegrator(s)
	it.Run(q, 0, s.MaxStableDt(0.4), 10)
	for i := range q.P {
		if q.P[i] != 0 || q.V[0][i] != 0 || q.V[1][i] != 0 || q.V[2][i] != 0 {
			t.Fatal("zero state did not stay zero")
		}
	}
}

// A spatially constant pressure with zero velocity is a steady state of the
// periodic problem (all derivatives and jumps vanish).
func TestAcousticConstantStateIsSteady(t *testing.T) {
	for _, flux := range []FluxType{CentralFlux, RiemannFlux} {
		m, s := newAcoustic(t, 1, 5, flux)
		q := NewAcousticState(m)
		for i := range q.P {
			q.P[i] = 3.7
		}
		rhs := NewAcousticState(m)
		s.RHS(q, rhs)
		for i := range rhs.P {
			if math.Abs(rhs.P[i]) > 1e-11 || math.Abs(rhs.V[0][i]) > 1e-11 {
				t.Fatalf("flux=%v: constant state has nonzero RHS at %d: p=%g vx=%g",
					flux, i, rhs.P[i], rhs.V[0][i])
			}
		}
	}
}

func TestAcousticRigidWallReflection(t *testing.T) {
	// Non-periodic box with rigid walls: normal velocity at the wall nodes
	// must not generate outflow; total energy must stay bounded (reflection,
	// not loss through the boundary) with the central flux.
	m := mesh.New(1, 6, false)
	mat := material.UniformAcoustic(m.NumElem, waterLike)
	s := NewAcousticSolver(m, mat, CentralFlux)
	s.Boundary = RigidWall
	q := NewAcousticState(m)
	// Gaussian pressure pulse in the middle.
	nn := m.NodesPerEl
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < nn; n++ {
			x, y, z := m.NodePosition(e, n)
			r2 := (x-0.5)*(x-0.5) + (y-0.5)*(y-0.5) + (z-0.5)*(z-0.5)
			q.P[e*nn+n] = math.Exp(-r2 / 0.05)
		}
	}
	e0 := s.Energy(q)
	it := NewAcousticIntegrator(s)
	it.Run(q, 0, s.MaxStableDt(0.15), 60)
	e1 := s.Energy(q)
	// The spatial operator conserves energy exactly; the only drift allowed
	// is the RK scheme's O(dt^5)-per-step dissipation on resolved modes.
	if rel := math.Abs(e1-e0) / e0; rel > 1e-4 {
		t.Errorf("rigid wall + central flux should conserve energy, drift %g", rel)
	}
}

func TestAcousticFluxKernelFaceDecomposition(t *testing.T) {
	// Summing FluxKernelFace over all 6 faces must equal FluxKernel — the
	// property the batched Figure 7 schedule depends on.
	m, s := newAcoustic(t, 1, 4, RiemannFlux)
	q := NewAcousticState(m)
	PlaneWaveX(m, waterLike, 1, q)
	// Perturb to break symmetry.
	for i := range q.P {
		q.V[1][i] = 0.1 * math.Sin(float64(i))
	}
	whole := NewAcousticState(m)
	s.VolumeKernel(q, whole)
	s.FluxKernel(q, whole)

	parts := NewAcousticState(m)
	s.VolumeKernel(q, parts)
	for f := mesh.Face(0); f < mesh.NumFaces; f++ {
		for e := 0; e < m.NumElem; e++ {
			s.FluxKernelFace(q, parts, e, f)
		}
	}
	for i := range whole.P {
		if math.Abs(whole.P[i]-parts.P[i]) > 1e-12 {
			t.Fatalf("per-face flux decomposition differs at %d: %g vs %g", i, whole.P[i], parts.P[i])
		}
	}
}

func TestStateScaleAddScaledCopy(t *testing.T) {
	m := mesh.New(0, 3, true)
	a := NewAcousticState(m)
	for i := range a.P {
		a.P[i] = float64(i)
		a.V[2][i] = 2 * float64(i)
	}
	b := a.Copy()
	a.Scale(3)
	if b.P[1] != 1 {
		t.Error("Copy did not deep-copy P")
	}
	if a.P[1] != 3 || a.V[2][1] != 6 {
		t.Error("Scale wrong")
	}
	a.AddScaled(2, b)
	if a.P[1] != 5 || a.V[2][1] != 10 {
		t.Error("AddScaled wrong")
	}
}

func TestRickerWavelet(t *testing.T) {
	// Peak value 1 at t = t0; zero crossings at t0 +- 1/(pi f sqrt(2)).
	f0, t0 := 10.0, 0.1
	if v := Ricker(f0, t0, t0); math.Abs(v-1) > 1e-12 {
		t.Errorf("Ricker peak = %g, want 1", v)
	}
	zc := t0 + 1/(math.Pi*f0*math.Sqrt2)
	if v := Ricker(f0, t0, zc); math.Abs(v) > 1e-12 {
		t.Errorf("Ricker at zero crossing = %g, want 0", v)
	}
	if v := Ricker(f0, t0, t0+1.0); math.Abs(v) > 1e-10 {
		t.Errorf("Ricker tail = %g, want ~0", v)
	}
}

func TestPointSourceInjectsAndPropagates(t *testing.T) {
	m := mesh.New(1, 6, false)
	mat := material.UniformAcoustic(m.NumElem, waterLike)
	s := NewAcousticSolver(m, mat, RiemannFlux)
	q := NewAcousticState(m)
	it := NewAcousticIntegrator(s)
	src := NewPointSource(m, 0.5, 0.5, 0.5, 1.0)
	src.PeakFreq, src.Delay = 6, 1.0/6
	rcv := NewReceiver(m, 0.9, 0.5, 0.5)
	it.Source = func(tm float64, rhsP []float64) { src.AddTo(tm, rhsP, m.NodesPerEl) }
	dt := s.MaxStableDt(0.3)
	tm := 0.0
	for i := 0; i < 220; i++ {
		it.Step(q, tm, dt)
		tm += dt
		rcv.Record(tm, q.P, m.NodesPerEl)
	}
	pt, pv := rcv.PeakAbs()
	if pv == 0 {
		t.Fatal("receiver recorded nothing; source did not propagate")
	}
	// Arrival time should be roughly distance/c after the source delay.
	wantArrival := src.Delay + 0.4/waterLike.SoundSpeed()
	if pt < wantArrival*0.5 || pt > wantArrival*2.5 {
		t.Errorf("peak at t=%g, expected near %g", pt, wantArrival)
	}
}

// Degenerate geometry: a single periodic element (refinement 0) is its
// own neighbor across every face; the plane wave must still propagate.
func TestAcousticSingleElementPeriodic(t *testing.T) {
	m := mesh.New(0, 8, true)
	s := NewAcousticSolver(m, material.UniformAcoustic(1, waterLike), RiemannFlux)
	q := NewAcousticState(m)
	PlaneWaveX(m, waterLike, 1, q)
	it := NewAcousticIntegrator(s)
	dt := s.MaxStableDt(0.4)
	tEnd := it.Run(q, 0, dt, 30)
	// With one degree-7 element spanning a full wavelength (8 points per
	// wavelength), ~1e-2 is the expected spatial accuracy; the test's point
	// is that the self-neighbor face exchange is correct and stable.
	if err := acousticMaxErr(m, q, 1, tEnd); err > 5e-2 {
		t.Errorf("single-element plane wave error %g", err)
	}
}

// Minimal polynomial order: np=2 (trilinear elements) must remain stable
// and conserve energy with the central flux.
func TestAcousticMinimalOrderStable(t *testing.T) {
	m := mesh.New(2, 2, true)
	s := NewAcousticSolver(m, material.UniformAcoustic(m.NumElem, waterLike), CentralFlux)
	q := NewAcousticState(m)
	PlaneWaveX(m, waterLike, 1, q)
	it := NewAcousticIntegrator(s)
	e0 := s.Energy(q)
	it.Run(q, 0, s.MaxStableDt(0.2), 100)
	e1 := s.Energy(q)
	// Trilinear elements barely resolve the wave, so the RK scheme damps
	// the poorly-resolved modes; the invariants here are stability and
	// no energy growth.
	if e1 > e0*(1+1e-9) {
		t.Errorf("np=2 energy grew: %g -> %g", e0, e1)
	}
	if rel := math.Abs(e1-e0) / e0; rel > 1e-2 {
		t.Errorf("np=2 energy drift %g suggests instability", rel)
	}
}
