package dg

import (
	"fmt"
	"math"
	"time"

	"wavepim/internal/material"
	"wavepim/internal/mesh"
	"wavepim/internal/obs"
)

// FluxType selects the numerical flux solver used to reconcile
// discontinuous interface values (Section 7.2's "central flux solver" and
// "Riemann flux solver" benchmark groups).
type FluxType int

const (
	// CentralFlux averages the two interface states. It is
	// energy-conserving but non-dissipative.
	CentralFlux FluxType = iota
	// RiemannFlux is the exact upwind flux built from characteristic
	// variables and impedances; it dissipates under-resolved modes and
	// needs the sqrt/inverse preprocessing the paper offloads to the host.
	RiemannFlux
)

func (f FluxType) String() string {
	if f == CentralFlux {
		return "central"
	}
	return "riemann"
}

// Boundary selects the treatment of domain-boundary faces of non-periodic
// meshes.
type Boundary int

const (
	// RigidWall reflects the normal velocity (n.v+ = -n.v-, p+ = p-).
	RigidWall Boundary = iota
	// PressureRelease mirrors pressure (p+ = -p-, v+ = v-).
	PressureRelease
)

// AcousticState holds the four unknown variables of the acoustic system
// (Table 1: pressure p and velocity v at every node of every element),
// stored per-variable as flat [NumElem*NodesPerEl] arrays.
type AcousticState struct {
	P []float64
	V [3][]float64
}

// NewAcousticState allocates a zeroed state for the mesh.
func NewAcousticState(m *mesh.Mesh) *AcousticState {
	n := m.NumElem * m.NodesPerEl
	s := &AcousticState{P: make([]float64, n)}
	for d := range s.V {
		s.V[d] = make([]float64, n)
	}
	return s
}

// Scale multiplies every variable by a (used by the RK integrator).
func (s *AcousticState) Scale(a float64) {
	scale(s.P, a)
	for d := range s.V {
		scale(s.V[d], a)
	}
}

// AddScaled accumulates s += a*t.
func (s *AcousticState) AddScaled(a float64, t *AcousticState) {
	addScaled(s.P, a, t.P)
	for d := range s.V {
		addScaled(s.V[d], a, t.V[d])
	}
}

// Copy duplicates the state.
func (s *AcousticState) Copy() *AcousticState {
	c := &AcousticState{P: append([]float64(nil), s.P...)}
	for d := range s.V {
		c.V[d] = append([]float64(nil), s.V[d]...)
	}
	return c
}

func scale(x []float64, a float64) {
	for i := range x {
		x[i] *= a
	}
}

func addScaled(x []float64, a float64, y []float64) {
	for i := range x {
		x[i] += a * y[i]
	}
}

// AcousticSolver evaluates the semi-discrete right-hand side of the
// acoustic system,
//
//	dp/dt = -kappa  div(v)
//	dv/dt = -(1/rho) grad(p)
//
// split into the paper's Volume (element-local derivatives) and Flux
// (interface reconciliation) kernels.
type AcousticSolver struct {
	Op       *Operator
	Mat      *material.AcousticField
	Flux     FluxType
	Boundary Boundary
	// Workers > 1 runs the RHS with that many goroutines (elements are
	// independent; see parallel.go). Results are identical to serial.
	Workers int
	// Obs, when non-nil, records per-stage RHS timings and parallel-range
	// utilization (see parallel.go). Nil keeps the uninstrumented path.
	Obs *obs.Sink
	// Tuning controls the adaptive serial/parallel dispatch of RHSParallel
	// (see parallel.go). The zero value uses the measured defaults.
	Tuning ParallelTuning

	scratch    [4][]float64 // per-element work arrays
	parScratch []acousticScratch
}

// NewAcousticSolver builds a solver over the given mesh and material field.
func NewAcousticSolver(m *mesh.Mesh, mat *material.AcousticField, flux FluxType) *AcousticSolver {
	if len(mat.ByElem) != m.NumElem {
		panic(fmt.Sprintf("dg: material field has %d elements, mesh has %d", len(mat.ByElem), m.NumElem))
	}
	s := &AcousticSolver{Op: NewOperator(m), Mat: mat, Flux: flux}
	for i := range s.scratch {
		s.scratch[i] = make([]float64, m.NodesPerEl)
	}
	return s
}

// RHS computes the full right-hand side (Volume + Flux) into rhs, which is
// overwritten. q is not modified.
func (s *AcousticSolver) RHS(q, rhs *AcousticState) {
	if s.Workers > 1 {
		s.RHSParallel(q, rhs, s.Workers)
		return
	}
	s.rhsSerial(q, rhs)
}

// rhsSerial is the unpooled RHS body, shared by RHS and the adaptive
// below-threshold fallback in RHSParallel.
func (s *AcousticSolver) rhsSerial(q, rhs *AcousticState) {
	if s.Obs != nil {
		defer observeSerialRHS(s.Obs, "acoustic", time.Now())
	}
	s.VolumeKernel(q, rhs)
	s.FluxKernel(q, rhs)
}

// VolumeKernel computes the element-local part of the RHS (the paper's
// "compute Volume" kernel, green block of Figure 2): grad p and div v
// formed by dot products with the derivative matrix, then combined with the
// material constants into contributions.
func (s *AcousticSolver) VolumeKernel(q, rhs *AcousticState) {
	for e := 0; e < s.Op.M.NumElem; e++ {
		s.volumeElem(q, rhs, e, s.scratch[0], s.scratch[1])
	}
}

// volumeElem computes one element's Volume contribution with caller-owned
// scratch (shared by the serial and parallel paths).
func (s *AcousticSolver) volumeElem(q, rhs *AcousticState, e int, divV, dPd []float64) {
	m := s.Op.M
	nn := m.NodesPerEl
	off := e * nn
	mat := s.Mat.ByElem[e]
	s.Op.Diff(q.V[0][off:off+nn], mesh.AxisX, divV)
	s.Op.AddDiff(q.V[1][off:off+nn], mesh.AxisY, divV)
	s.Op.AddDiff(q.V[2][off:off+nn], mesh.AxisZ, divV)
	for n := 0; n < nn; n++ {
		rhs.P[off+n] = -mat.Kappa * divV[n]
	}
	invRho := 1 / mat.Rho
	for d := 0; d < 3; d++ {
		s.Op.Diff(q.P[off:off+nn], mesh.Axis(d), dPd)
		for n := 0; n < nn; n++ {
			rhs.V[d][off+n] = -invRho * dPd[n]
		}
	}
}

// FluxKernel adds the interface (non-local) part of the RHS (the paper's
// "compute Flux" kernel, red block of Figure 2). For every face it gathers
// the neighbor's matching face nodes, solves the interface (central or
// Riemann) problem, and lifts the flux difference back onto the face nodes.
func (s *AcousticSolver) FluxKernel(q, rhs *AcousticState) {
	m := s.Op.M
	for e := 0; e < m.NumElem; e++ {
		for f := mesh.Face(0); f < mesh.NumFaces; f++ {
			s.fluxFace(q, rhs, e, f)
		}
	}
}

// FluxKernelFace exposes per-face flux computation for the batched PIM
// schedule (Figure 7 computes one axis/normal combination at a time).
func (s *AcousticSolver) FluxKernelFace(q, rhs *AcousticState, e int, f mesh.Face) {
	s.fluxFace(q, rhs, e, f)
}

func (s *AcousticSolver) fluxFace(q, rhs *AcousticState, e int, f mesh.Face) {
	m := s.Op.M
	nn := m.NodesPerEl
	off := e * nn
	mat := s.Mat.ByElem[e]
	lift := s.Op.Lift()
	myNodes := s.Op.FaceNodes(f)
	axis := int(f.Axis())
	sign := float64(f.Sign())

	nid, ok := m.Neighbor(e, f)
	var nbNodes []int
	var nbOff int
	if ok {
		nbNodes = s.Op.FaceNodes(f.Opposite())
		nbOff = nid * nn
	}

	z := mat.Impedance()
	invRho := 1 / mat.Rho
	for g, n := range myNodes {
		pm := q.P[off+n]
		vnm := sign * q.V[axis][off+n] // n.v on my side
		var pp, vnp float64            // neighbor (plus) side
		if ok {
			nb := nbNodes[g]
			pp = q.P[nbOff+nb]
			vnp = sign * q.V[axis][nbOff+nb]
		} else {
			switch s.Boundary {
			case RigidWall:
				pp, vnp = pm, -vnm
			case PressureRelease:
				pp, vnp = -pm, vnm
			}
		}
		// Interface states from characteristics (central flux when the
		// impedance penalties are dropped).
		var pStar, vnStar float64
		switch s.Flux {
		case CentralFlux:
			pStar = (pm + pp) / 2
			vnStar = (vnm + vnp) / 2
		case RiemannFlux:
			pStar = (pm+pp)/2 + z/2*(vnm-vnp)
			vnStar = (vnm+vnp)/2 + (pm-pp)/(2*z)
		}
		// Strong-form surface corrections: lift * (F-.n - F*.n).
		rhs.P[off+n] += lift * mat.Kappa * (vnm - vnStar)
		rhs.V[axis][off+n] += lift * invRho * (pm - pStar) * sign
	}
}

// MaxStableDt returns a CFL-limited time step for the solver's mesh and
// material: dt = cfl * (minimum GLL node spacing) / c_max.
func (s *AcousticSolver) MaxStableDt(cfl float64) float64 {
	m := s.Op.M
	minDx := (m.Rule.Points[1] - m.Rule.Points[0]) * m.H / 2
	return cfl * minDx / s.Mat.MaxSoundSpeed()
}

// Energy returns the discrete acoustic energy
// E = sum_elems Int( p^2/(2 kappa) + rho |v|^2 / 2 ).
// With the central flux and periodic boundaries it is conserved by the
// semi-discrete system, which the tests verify.
func (s *AcousticSolver) Energy(q *AcousticState) float64 {
	m := s.Op.M
	nn := m.NodesPerEl
	u := s.scratch[3]
	var total float64
	for e := 0; e < m.NumElem; e++ {
		off := e * nn
		mat := s.Mat.ByElem[e]
		for n := 0; n < nn; n++ {
			p := q.P[off+n]
			v2 := q.V[0][off+n]*q.V[0][off+n] + q.V[1][off+n]*q.V[1][off+n] + q.V[2][off+n]*q.V[2][off+n]
			u[n] = p*p/(2*mat.Kappa) + mat.Rho*v2/2
		}
		total += s.Op.IntegrateElement(u)
	}
	return total
}

// PlaneWaveX initializes q with a right-moving sinusoidal plane wave
// p = sin(2*pi*k*(x - c t)), v_x = p/Z evaluated at t=0, for a uniform
// material. Used by the verification tests and the examples.
func PlaneWaveX(m *mesh.Mesh, mat material.Acoustic, k int, q *AcousticState) {
	z := mat.Impedance()
	nn := m.NodesPerEl
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < nn; n++ {
			x, _, _ := m.NodePosition(e, n)
			p := math.Sin(2 * math.Pi * float64(k) * x)
			q.P[e*nn+n] = p
			q.V[0][e*nn+n] = p / z
			q.V[1][e*nn+n] = 0
			q.V[2][e*nn+n] = 0
		}
	}
}

// PlaneWaveXAt returns the analytic plane-wave pressure at (x, t).
func PlaneWaveXAt(mat material.Acoustic, k int, x, t float64) float64 {
	return math.Sin(2 * math.Pi * float64(k) * (x - mat.SoundSpeed()*t))
}
