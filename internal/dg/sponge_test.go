package dg

import (
	"math"
	"testing"

	"wavepim/internal/material"
	"wavepim/internal/mesh"
)

func TestSpongeProfile(t *testing.T) {
	m := mesh.New(1, 5, false)
	sp := NewSponge(m, []mesh.Face{mesh.FaceZPlus}, 0.25, 40)
	// Interior nodes (z < 0.75) undamped; damping grows toward z = 1.
	nn := m.NodesPerEl
	var atEdge, interior float64
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < nn; n++ {
			_, _, z := m.NodePosition(e, n)
			s := sp.Sigma[e*nn+n]
			if z < 0.74 && s != 0 {
				t.Fatalf("interior node z=%.3f damped: %g", z, s)
			}
			if z > 0.99 && s > atEdge {
				atEdge = s
			}
			if s > 0 && z < 0.80 {
				interior = s
			}
		}
	}
	if atEdge < 30 {
		t.Errorf("edge damping %g, want near the peak 40", atEdge)
	}
	if interior > 5 {
		t.Errorf("layer-entry damping %g should be small (quadratic ramp)", interior)
	}
	if sp.MaxSigma() != atEdge {
		t.Error("MaxSigma mismatch")
	}
}

// The sponge absorbs an outgoing pulse: with the layer active, far less
// energy survives a boundary interaction than with a bare reflecting
// wall.
func TestSpongeAbsorbsOutgoingWave(t *testing.T) {
	mat := material.Acoustic{Kappa: 1, Rho: 1} // c = 1
	run := func(withSponge bool) float64 {
		m := mesh.New(1, 6, false)
		// Central flux: energy-conserving, so the sponge is the only sink
		// and the comparison is clean.
		s := NewAcousticSolver(m, material.UniformAcoustic(m.NumElem, mat), CentralFlux)
		s.Boundary = RigidWall
		var sp *Sponge
		if withSponge {
			all := []mesh.Face{mesh.FaceXMinus, mesh.FaceXPlus, mesh.FaceYMinus,
				mesh.FaceYPlus, mesh.FaceZMinus, mesh.FaceZPlus}
			sp = NewSponge(m, all, 0.3, 60)
		}
		it := NewAcousticIntegrator(s)
		if sp != nil {
			// Damping rides along with the source hook.
			base := it.Source
			it.Source = func(tm float64, rhsP []float64) {
				if base != nil {
					base(tm, rhsP)
				}
			}
		}
		q := NewAcousticState(m)
		nn := m.NodesPerEl
		for e := 0; e < m.NumElem; e++ {
			for n := 0; n < nn; n++ {
				x, y, z := m.NodePosition(e, n)
				r2 := (x-0.5)*(x-0.5) + (y-0.5)*(y-0.5) + (z-0.5)*(z-0.5)
				p := math.Exp(-r2 / 0.05)
				q.P[e*nn+n] = p
				q.V[0][e*nn+n] = p // rightward-biased pulse
			}
		}
		dt := s.MaxStableDt(0.2)
		// Manual stepping so the sponge applies inside each stage.
		contr := NewAcousticState(m)
		aux := NewAcousticState(m)
		steps := int(1.2 / mat.SoundSpeed() / dt) // time to hit and interact with the wall
		for i := 0; i < steps; i++ {
			for st := 0; st < NumStages; st++ {
				s.RHS(q, contr)
				if sp != nil {
					sp.Apply(q, contr)
				}
				aux.Scale(LSRK5A[st])
				aux.AddScaled(dt, contr)
				q.AddScaled(LSRK5B[st], aux)
			}
		}
		return s.Energy(q)
	}
	reflected := run(false)
	absorbed := run(true)
	if absorbed > reflected/5 {
		t.Errorf("sponge left %.3g of the energy; reflecting wall leaves %.3g (want <20%%)", absorbed, reflected)
	}
	if absorbed <= 0 {
		t.Error("energy must stay positive")
	}
}

func TestReflectionEstimateMonotone(t *testing.T) {
	sp := &Sponge{}
	r1 := sp.ReflectionEstimate(0.2, 10, 1)
	r2 := sp.ReflectionEstimate(0.2, 40, 1)
	if !(r2 < r1 && r1 < 1) {
		t.Errorf("reflection estimate not monotone in strength: %g %g", r1, r2)
	}
}
