// Package dg implements the reference nodal discontinuous Galerkin solver
// for the acoustic and elastic wave equations (Section 2.2). It is a
// spectral-element dG method on tensor-product hexahedral elements with
// Gauss-Legendre-Lobatto collocation, which makes the element mass matrix
// diagonal ("mass inverse" in Table 1) and gives the Volume / Flux /
// Integration kernel split of Figure 2.
//
// This package is the ground truth the PIM functional simulation is
// verified against, and its operator counts drive both the GPU roofline
// model and Table 6.
package dg

import (
	"wavepim/internal/mesh"
)

// Operator bundles the element-local differentiation machinery for a mesh:
// the 1-D differentiation matrix applied along each tensor axis, scaled by
// the (constant, affine) geometric Jacobian.
type Operator struct {
	M    *mesh.Mesh
	np   int
	nn   int
	d    [][]float64 // 1-D differentiation matrix, np x np
	jac  float64     // 2/H: d(reference)/d(physical)
	lift float64     // surface lift factor (2/H)/w_0 applied at face nodes

	faceNodes [mesh.NumFaces][]int // cached FaceNodes per face
}

// NewOperator builds the operator for a mesh.
func NewOperator(m *mesh.Mesh) *Operator {
	op := &Operator{
		M:    m,
		np:   m.Np,
		nn:   m.NodesPerEl,
		d:    m.Rule.D,
		jac:  m.JacobianScale(),
		lift: m.JacobianScale() / m.Rule.Weights[0],
	}
	for f := mesh.Face(0); f < mesh.NumFaces; f++ {
		op.faceNodes[f] = m.FaceNodes(f)
	}
	return op
}

// Lift returns the surface lift coefficient: the diagonal-mass-inverse times
// face mass factor, (2/H) / w_0, applied to flux differences at face nodes.
func (op *Operator) Lift() float64 { return op.lift }

// FaceNodes returns the cached face node index list for f.
func (op *Operator) FaceNodes(f mesh.Face) []int { return op.faceNodes[f] }

// Diff computes the physical-space derivative of the element-local nodal
// values u (length NodesPerEl) along the given axis, writing into out.
// out must not alias u.
func (op *Operator) Diff(u []float64, axis mesh.Axis, out []float64) {
	np, d := op.np, op.d
	switch axis {
	case mesh.AxisX:
		for k := 0; k < np; k++ {
			for j := 0; j < np; j++ {
				base := (k*np + j) * np
				for i := 0; i < np; i++ {
					var s float64
					row := d[i]
					for m := 0; m < np; m++ {
						s += row[m] * u[base+m]
					}
					out[base+i] = s * op.jac
				}
			}
		}
	case mesh.AxisY:
		for k := 0; k < np; k++ {
			for i := 0; i < np; i++ {
				base := k * np * np
				for j := 0; j < np; j++ {
					var s float64
					row := d[j]
					for m := 0; m < np; m++ {
						s += row[m] * u[base+m*np+i]
					}
					out[base+j*np+i] = s * op.jac
				}
			}
		}
	case mesh.AxisZ:
		np2 := np * np
		for j := 0; j < np; j++ {
			for i := 0; i < np; i++ {
				base := j*np + i
				for k := 0; k < np; k++ {
					var s float64
					row := d[k]
					for m := 0; m < np; m++ {
						s += row[m] * u[base+m*np2]
					}
					out[base+k*np2] = s * op.jac
				}
			}
		}
	}
}

// AddDiff is Diff but accumulates (out += du/daxis); used to form
// divergences without extra scratch.
func (op *Operator) AddDiff(u []float64, axis mesh.Axis, out []float64) {
	np, d := op.np, op.d
	switch axis {
	case mesh.AxisX:
		for k := 0; k < np; k++ {
			for j := 0; j < np; j++ {
				base := (k*np + j) * np
				for i := 0; i < np; i++ {
					var s float64
					row := d[i]
					for m := 0; m < np; m++ {
						s += row[m] * u[base+m]
					}
					out[base+i] += s * op.jac
				}
			}
		}
	case mesh.AxisY:
		for k := 0; k < np; k++ {
			for i := 0; i < np; i++ {
				base := k * np * np
				for j := 0; j < np; j++ {
					var s float64
					row := d[j]
					for m := 0; m < np; m++ {
						s += row[m] * u[base+m*np+i]
					}
					out[base+j*np+i] += s * op.jac
				}
			}
		}
	case mesh.AxisZ:
		np2 := np * np
		for j := 0; j < np; j++ {
			for i := 0; i < np; i++ {
				base := j*np + i
				for k := 0; k < np; k++ {
					var s float64
					row := d[k]
					for m := 0; m < np; m++ {
						s += row[m] * u[base+m*np2]
					}
					out[base+k*np2] += s * op.jac
				}
			}
		}
	}
}

// IntegrateElement computes the volume quadrature of element-local nodal
// values u: sum_n w3(n) * J * u[n], where w3 is the tensor-product GLL
// weight and J the element Jacobian determinant.
func (op *Operator) IntegrateElement(u []float64) float64 {
	np, w := op.np, op.M.Rule.Weights
	var s float64
	idx := 0
	for k := 0; k < np; k++ {
		for j := 0; j < np; j++ {
			wkj := w[k] * w[j]
			for i := 0; i < np; i++ {
				s += wkj * w[i] * u[idx]
				idx++
			}
		}
	}
	return s * op.M.JacobianDet()
}
