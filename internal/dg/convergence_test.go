package dg

import (
	"math"
	"testing"

	"wavepim/internal/material"
	"wavepim/internal/mesh"
)

// Spatial (spectral) convergence: at fixed physical time and small dt, the
// plane-wave error drops by orders of magnitude as the polynomial order
// rises — the accuracy argument for the dG method that the paper cites
// ("due to its accuracy, high data-locality, and ease of parallelization").
func TestAcousticSpectralConvergence(t *testing.T) {
	mat := material.Acoustic{Kappa: 2.25, Rho: 1.0}
	tEnd := 0.1
	errAt := func(np int) float64 {
		m := mesh.New(1, np, true)
		s := NewAcousticSolver(m, material.UniformAcoustic(m.NumElem, mat), RiemannFlux)
		q := NewAcousticState(m)
		PlaneWaveX(m, mat, 1, q)
		it := NewAcousticIntegrator(s)
		steps := int(math.Ceil(tEnd / s.MaxStableDt(0.2)))
		it.Run(q, 0, tEnd/float64(steps), steps)
		return acousticMaxErr(m, q, 1, tEnd)
	}
	e3, e5, e7 := errAt(3), errAt(5), errAt(7)
	if !(e5 < e3/10 && e7 < e5/10) {
		t.Errorf("errors not spectrally convergent: np=3 %.3g, np=5 %.3g, np=7 %.3g", e3, e5, e7)
	}
}

// h-convergence: refining the mesh at fixed order drops the error at
// roughly the formal rate (order np for smooth solutions).
func TestAcousticHConvergence(t *testing.T) {
	mat := material.Acoustic{Kappa: 2.25, Rho: 1.0}
	np := 4
	tEnd := 0.05
	errAt := func(ref int) float64 {
		m := mesh.New(ref, np, true)
		s := NewAcousticSolver(m, material.UniformAcoustic(m.NumElem, mat), RiemannFlux)
		q := NewAcousticState(m)
		PlaneWaveX(m, mat, 1, q)
		it := NewAcousticIntegrator(s)
		steps := int(math.Ceil(tEnd / s.MaxStableDt(0.2)))
		it.Run(q, 0, tEnd/float64(steps), steps)
		return acousticMaxErr(m, q, 1, tEnd)
	}
	e1, e2 := errAt(1), errAt(2)
	rate := math.Log2(e1 / e2)
	if rate < 3 {
		t.Errorf("h-convergence rate %.2f (e1=%.3g e2=%.3g), want >= 3 for np=4", rate, e1, e2)
	}
}

// The elastic solver converges spectrally too.
func TestElasticSpectralConvergence(t *testing.T) {
	mat := material.Elastic{Lambda: 2, Mu: 1, Rho: 1}
	tEnd := 0.1
	errAt := func(np int) float64 {
		m := mesh.New(1, np, true)
		s := NewElasticSolver(m, material.UniformElastic(m.NumElem, mat), RiemannFlux)
		q := NewElasticState(m)
		PlaneWavePX(m, mat, 1, q)
		it := NewElasticIntegrator(s)
		steps := int(math.Ceil(tEnd / s.MaxStableDt(0.2)))
		it.Run(q, 0, tEnd/float64(steps), steps)
		return elasticMaxErrV(m, q, 0, 1, mat.PWaveSpeed(), tEnd)
	}
	e3, e6 := errAt(3), errAt(6)
	if e6 > e3/100 {
		t.Errorf("elastic errors not spectrally convergent: np=3 %.3g, np=6 %.3g", e3, e6)
	}
}
