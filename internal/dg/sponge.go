package dg

import (
	"math"

	"wavepim/internal/mesh"
)

// Sponge is an absorbing layer: a smooth damping profile sigma(x) applied
// as an extra RHS term -sigma*q, which attenuates outgoing waves before
// they reach the domain boundary. It is the lightweight stand-in for the
// PML truncation the paper's full-waveform-inversion references use
// (Fathi et al., "PML-truncated media"), adequate for the forward
// modeling the examples perform. On the PIM side a sponge is free to
// within one extra multiply-add per variable: sigma is one more
// per-element constant column.
type Sponge struct {
	// Sigma holds the damping coefficient per global node.
	Sigma []float64
}

// NewSponge builds a sponge with damping concentrated within width of the
// domain faces listed in faces. strength is the peak damping rate; the
// profile ramps quadratically from the inner edge of the layer.
func NewSponge(m *mesh.Mesh, faces []mesh.Face, width, strength float64) *Sponge {
	s := &Sponge{Sigma: make([]float64, m.NumElem*m.NodesPerEl)}
	nn := m.NodesPerEl
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < nn; n++ {
			x, y, z := m.NodePosition(e, n)
			pos := [3]float64{x, y, z}
			var sig float64
			for _, f := range faces {
				var d float64 // distance into the layer
				c := pos[f.Axis()]
				if f.Sign() < 0 {
					d = width - c
				} else {
					d = c - (1 - width)
				}
				if d > 0 {
					r := d / width
					if v := strength * r * r; v > sig {
						sig = v
					}
				}
			}
			s.Sigma[e*nn+n] = sig
		}
	}
	return s
}

// Apply adds the damping term -sigma*q to an acoustic RHS.
func (s *Sponge) Apply(q, rhs *AcousticState) {
	for i, sg := range s.Sigma {
		if sg == 0 {
			continue
		}
		rhs.P[i] -= sg * q.P[i]
		for d := 0; d < 3; d++ {
			rhs.V[d][i] -= sg * q.V[d][i]
		}
	}
}

// MaxSigma returns the peak damping rate (for time-step safety checks:
// the LSRK scheme needs dt*sigma within its real-axis stability
// interval).
func (s *Sponge) MaxSigma() float64 {
	var m float64
	for _, v := range s.Sigma {
		if v > m {
			m = v
		}
	}
	return m
}

// ReflectionEstimate returns a crude upper bound on the amplitude
// reflection coefficient of the layer for a normally incident wave of
// speed c: exp(-2 * integral sigma / c) over the quadratic profile.
func (s *Sponge) ReflectionEstimate(width, strength, c float64) float64 {
	integral := strength * width / 3 // integral of strength*(d/width)^2
	return math.Exp(-2 * integral / c)
}
