package dg

import (
	"math"
	"testing"

	"wavepim/internal/material"
	"wavepim/internal/mesh"
)

// forceParallel disables the adaptive thresholds so tests exercise the
// pooled path even on meshes far below the crossover.
var forceParallel = ParallelTuning{MinWork: -1, ChunkWork: -1}

// The parallel RHS is bit-identical to the serial one (same per-element
// arithmetic order, private scratch per worker).
func TestParallelRHSBitIdentical(t *testing.T) {
	m := mesh.New(2, 5, true)
	mat := material.UniformAcoustic(m.NumElem, waterLike)
	s := NewAcousticSolver(m, mat, RiemannFlux)
	s.Tuning = forceParallel
	q := NewAcousticState(m)
	PlaneWaveX(m, waterLike, 1, q)
	for i := range q.P {
		q.V[1][i] = 0.3 * math.Sin(float64(i))
		q.V[2][i] = -0.2 * math.Cos(float64(i)*0.7)
	}
	serial := NewAcousticState(m)
	s.RHS(q, serial)
	for _, workers := range []int{2, 3, 8, 64} {
		par := NewAcousticState(m)
		s.RHSParallel(q, par, workers)
		for i := range serial.P {
			if serial.P[i] != par.P[i] || serial.V[0][i] != par.V[0][i] ||
				serial.V[1][i] != par.V[1][i] || serial.V[2][i] != par.V[2][i] {
				t.Fatalf("workers=%d: parallel RHS differs at node %d", workers, i)
			}
		}
	}
}

// Workers set on the solver routes RHS through the parallel path and full
// simulations stay correct.
func TestParallelSolverPropagatesCorrectly(t *testing.T) {
	m := mesh.New(1, 6, true)
	mat := material.UniformAcoustic(m.NumElem, waterLike)
	s := NewAcousticSolver(m, mat, RiemannFlux)
	s.Workers = 4
	q := NewAcousticState(m)
	PlaneWaveX(m, waterLike, 1, q)
	it := NewAcousticIntegrator(s)
	dt := s.MaxStableDt(0.4)
	tEnd := it.Run(q, 0, dt, 40)
	if err := acousticMaxErr(m, q, 1, tEnd); err > 1e-2 {
		t.Errorf("parallel solver plane wave error %g", err)
	}
}

// The elastic parallel RHS is bit-identical to the serial one, and the
// Workers field routes RHS through it.
func TestParallelElasticRHSBitIdentical(t *testing.T) {
	m := mesh.New(2, 5, true)
	mat := material.UniformElastic(m.NumElem, rockLike)
	s := NewElasticSolver(m, mat, RiemannFlux)
	s.Tuning = forceParallel
	q := NewElasticState(m)
	PlaneWavePX(m, rockLike, 1, q)
	for i := range q.V[0] {
		q.V[1][i] = 0.3 * math.Sin(float64(i))
		q.S[SXZ][i] = -0.2 * math.Cos(float64(i)*0.7)
	}
	serial := NewElasticState(m)
	s.RHS(q, serial)
	for _, workers := range []int{2, 3, 8, 64} {
		par := NewElasticState(m)
		s.RHSParallel(q, par, workers)
		for c := range serial.S {
			for i := range serial.S[c] {
				if serial.S[c][i] != par.S[c][i] {
					t.Fatalf("workers=%d: stress %d differs at node %d", workers, c, i)
				}
			}
		}
		for d := range serial.V {
			for i := range serial.V[d] {
				if serial.V[d][i] != par.V[d][i] {
					t.Fatalf("workers=%d: velocity %d differs at node %d", workers, d, i)
				}
			}
		}
	}
	// Workers on the solver dispatches RHS through the parallel path.
	s.Workers = 4
	viaField := NewElasticState(m)
	s.RHS(q, viaField)
	for i := range serial.V[0] {
		if serial.V[0][i] != viaField.V[0][i] {
			t.Fatalf("Workers dispatch differs at node %d", i)
		}
	}
}

// The Maxwell parallel RHS is bit-identical to the serial one, and the
// Workers field routes RHS through it.
func TestParallelMaxwellRHSBitIdentical(t *testing.T) {
	m := mesh.New(2, 5, true)
	mat := material.Dielectric{Eps: 2.25, Mu: 1.0}
	s := NewMaxwellSolver(m, mat, RiemannFlux)
	s.Tuning = forceParallel
	q := NewMaxwellState(m)
	PlaneWaveEM(m, mat, 1, q)
	for i := range q.E[0] {
		q.E[2][i] = 0.3 * math.Sin(float64(i))
		q.H[0][i] = -0.2 * math.Cos(float64(i)*0.7)
	}
	serial := NewMaxwellState(m)
	s.RHS(q, serial)
	for _, workers := range []int{2, 3, 8, 64} {
		par := NewMaxwellState(m)
		s.RHSParallel(q, par, workers)
		for d := 0; d < 3; d++ {
			for i := range serial.E[d] {
				if serial.E[d][i] != par.E[d][i] || serial.H[d][i] != par.H[d][i] {
					t.Fatalf("workers=%d: field %d differs at node %d", workers, d, i)
				}
			}
		}
	}
	s.Workers = 4
	viaField := NewMaxwellState(m)
	s.RHS(q, viaField)
	for i := range serial.E[1] {
		if serial.E[1][i] != viaField.E[1][i] {
			t.Fatalf("Workers dispatch differs at node %d", i)
		}
	}
}

// The per-worker scratch is cached on the solver: repeated parallel RHS
// calls (the RK integrator makes five per step) must not grow the cache,
// and growing the worker count must extend it in place.
func TestParallelScratchCached(t *testing.T) {
	m := mesh.New(1, 4, true)
	s := NewAcousticSolver(m, material.UniformAcoustic(m.NumElem, waterLike), CentralFlux)
	s.Tuning = forceParallel
	q := NewAcousticState(m)
	rhs := NewAcousticState(m)
	s.RHSParallel(q, rhs, 4)
	first := &s.parScratch[0].divV[0]
	if len(s.parScratch) != 4 {
		t.Fatalf("scratch sets = %d, want 4", len(s.parScratch))
	}
	for i := 0; i < 10; i++ {
		s.RHSParallel(q, rhs, 4)
	}
	if len(s.parScratch) != 4 || &s.parScratch[0].divV[0] != first {
		t.Error("repeated RHSParallel reallocated scratch")
	}
	s.RHSParallel(q, rhs, 6)
	if len(s.parScratch) != 6 || &s.parScratch[0].divV[0] != first {
		t.Error("growing workers should extend the cache in place")
	}
}

// Race check support: run with -race to validate there is no shared
// mutable state across workers (the test body just exercises the pool).
func TestParallelForCoverage(t *testing.T) {
	var hits [100]int
	parallelFor(100, 7, func(lo, hi, w int) {
		for i := lo; i < hi; i++ {
			hits[i]++
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
	// Degenerate cases.
	parallelFor(0, 4, func(lo, hi, w int) { t.Fatal("should not run") })
	count := 0
	parallelFor(3, 1, func(lo, hi, w int) { count += hi - lo })
	if count != 3 {
		t.Fatal("serial fallback wrong")
	}
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers must be positive")
	}
}
