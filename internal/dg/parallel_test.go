package dg

import (
	"math"
	"testing"

	"wavepim/internal/material"
	"wavepim/internal/mesh"
)

// The parallel RHS is bit-identical to the serial one (same per-element
// arithmetic order, private scratch per worker).
func TestParallelRHSBitIdentical(t *testing.T) {
	m := mesh.New(2, 5, true)
	mat := material.UniformAcoustic(m.NumElem, waterLike)
	s := NewAcousticSolver(m, mat, RiemannFlux)
	q := NewAcousticState(m)
	PlaneWaveX(m, waterLike, 1, q)
	for i := range q.P {
		q.V[1][i] = 0.3 * math.Sin(float64(i))
		q.V[2][i] = -0.2 * math.Cos(float64(i)*0.7)
	}
	serial := NewAcousticState(m)
	s.RHS(q, serial)
	for _, workers := range []int{2, 3, 8, 64} {
		par := NewAcousticState(m)
		s.RHSParallel(q, par, workers)
		for i := range serial.P {
			if serial.P[i] != par.P[i] || serial.V[0][i] != par.V[0][i] ||
				serial.V[1][i] != par.V[1][i] || serial.V[2][i] != par.V[2][i] {
				t.Fatalf("workers=%d: parallel RHS differs at node %d", workers, i)
			}
		}
	}
}

// Workers set on the solver routes RHS through the parallel path and full
// simulations stay correct.
func TestParallelSolverPropagatesCorrectly(t *testing.T) {
	m := mesh.New(1, 6, true)
	mat := material.UniformAcoustic(m.NumElem, waterLike)
	s := NewAcousticSolver(m, mat, RiemannFlux)
	s.Workers = 4
	q := NewAcousticState(m)
	PlaneWaveX(m, waterLike, 1, q)
	it := NewAcousticIntegrator(s)
	dt := s.MaxStableDt(0.4)
	tEnd := it.Run(q, 0, dt, 40)
	if err := acousticMaxErr(m, q, 1, tEnd); err > 1e-2 {
		t.Errorf("parallel solver plane wave error %g", err)
	}
}

// Race check support: run with -race to validate there is no shared
// mutable state across workers (the test body just exercises the pool).
func TestParallelForCoverage(t *testing.T) {
	var hits [100]int
	parallelFor(100, 7, func(lo, hi, w int) {
		for i := lo; i < hi; i++ {
			hits[i]++
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
	// Degenerate cases.
	parallelFor(0, 4, func(lo, hi, w int) { t.Fatal("should not run") })
	count := 0
	parallelFor(3, 1, func(lo, hi, w int) { count += hi - lo })
	if count != 3 {
		t.Fatal("serial fallback wrong")
	}
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers must be positive")
	}
}
