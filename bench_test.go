package wavepim

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation, plus ablation benches for the design choices
// DESIGN.md calls out (element placement, pipelining, expansion,
// interconnect). Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark performs the full generation work of its experiment and
// attaches the key reproduced quantities as custom metrics, so the bench
// output doubles as a compact reproduction report.

import (
	"testing"

	"wavepim/internal/dg"
	"wavepim/internal/dg/opcount"
	"wavepim/internal/experiments"
	"wavepim/internal/gpu"
	"wavepim/internal/hostcpu"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
	"wavepim/internal/params"
	"wavepim/internal/pim/chip"
	"wavepim/internal/pim/intercon"
	"wavepim/internal/pim/nor"
	wp "wavepim/internal/wavepim"
)

// BenchmarkSec31GPUvsCPU regenerates the Section 3.1 GPU-vs-CPU speedups.
func BenchmarkSec31GPUvsCPU(b *testing.B) {
	var last []experiments.Sec31Row
	for i := 0; i < b.N; i++ {
		last = experiments.Sec31()
	}
	for _, r := range last {
		if r.Level == 5 && r.Platform == "Tesla V100" {
			b.ReportMetric(r.Model, "V100-L5-speedup")
		}
	}
}

// BenchmarkTable3PowerModel regenerates the chip power breakdown.
func BenchmarkTable3PowerModel(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		total = chip.PowerModel(chip.Config2GB()).TotalW
	}
	b.ReportMetric(total, "2GB-htree-W")
}

// BenchmarkTable4BasicOps measures the gate-level FP32 operations whose
// costs Table 4 parameterizes.
func BenchmarkTable4BasicOps(b *testing.B) {
	var c nor.Circuit
	b.Run("AddFP32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.AddFP32(0x40490FDB, 0x3F800001)
		}
	})
	b.Run("MulFP32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.MulFP32(0x40490FDB, 0x3F800001)
		}
	})
}

// BenchmarkTable5Planner regenerates the configuration grid.
func BenchmarkTable5Planner(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n = len(experiments.Table5())
	}
	b.ReportMetric(float64(n), "cells")
}

// BenchmarkTable6Characteristics regenerates the benchmark characteristics.
func BenchmarkTable6Characteristics(b *testing.B) {
	var rows []experiments.Table6Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table6()
	}
	b.ReportMetric(float64(rows[0].ModelFLOPs), "acoustic4-flops")
}

// BenchmarkFig11Performance runs the full performance comparison.
func BenchmarkFig11Performance(b *testing.B) {
	var rows []experiments.FigRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig11And12()
	}
	sp := experiments.AvgSpeedups(rows, "Unfused-1080Ti")
	b.ReportMetric(sp["PIM-2GB-28nm"], "2GB-avg-speedup")
	b.ReportMetric(sp["PIM-16GB-28nm"], "16GB-avg-speedup")
}

// BenchmarkFig12Energy runs the energy comparison.
func BenchmarkFig12Energy(b *testing.B) {
	var rows []experiments.FigRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig11And12()
	}
	es := experiments.AvgEnergySavings(rows, "Unfused-1080Ti")
	b.ReportMetric(es["PIM-512MB-28nm"], "512MB-avg-savings")
}

// BenchmarkFig13Pipeline runs the pipeline analysis.
func BenchmarkFig13Pipeline(b *testing.B) {
	var r experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig13()
	}
	b.ReportMetric(r.ThroughputRatio, "unpipelined-throughput")
}

// BenchmarkFig14Interconnect runs the H-tree versus Bus study.
func BenchmarkFig14Interconnect(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		s = experiments.HTreeTimeSavings()
	}
	b.ReportMetric(s, "htree-savings")
}

// BenchmarkHeadline computes the whole-paper averages.
func BenchmarkHeadline(b *testing.B) {
	var h experiments.HeadlineResult
	for i := 0; i < b.N; i++ {
		h = experiments.Headline()
	}
	b.ReportMetric(h.AvgSpeedup, "avg-speedup")
	b.ReportMetric(h.AvgEnergy, "avg-energy-savings")
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

// BenchmarkAblationPlacement compares Morton against row-major element
// placement: row-major scatters z-neighbors across tiles and inflates the
// flux fetch.
func BenchmarkAblationPlacement(b *testing.B) {
	bench := opcount.Benchmark{Eq: opcount.Acoustic, Refinement: 4}
	run := func(morton bool) wp.Result {
		opt := wp.DefaultOptions()
		opt.Morton = morton
		r, err := wp.Run(bench, chip.Config2GB(), opt)
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	var m, rm wp.Result
	for i := 0; i < b.N; i++ {
		m = run(true)
		rm = run(false)
	}
	b.ReportMetric(rm.Breakdown.InterTransferSec/m.Breakdown.InterTransferSec, "rowmajor-fetch-penalty")
}

// BenchmarkAblationPipelining quantifies the Section 6.3 pipeline.
func BenchmarkAblationPipelining(b *testing.B) {
	bench := opcount.Benchmark{Eq: opcount.Acoustic, Refinement: 4}
	var ratio float64
	for i := 0; i < b.N; i++ {
		on := wp.DefaultOptions()
		off := wp.DefaultOptions()
		off.Pipelined = false
		r1, err := wp.Run(bench, chip.Config2GB(), on)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := wp.Run(bench, chip.Config2GB(), off)
		if err != nil {
			b.Fatal(err)
		}
		ratio = r1.StageSec / r2.StageSec
	}
	b.ReportMetric(ratio, "pipelined/unpipelined")
}

// BenchmarkAblationExpansion forces the naive layout onto a chip the
// planner would expand on, quantifying E_p's benefit.
func BenchmarkAblationExpansion(b *testing.B) {
	bench := opcount.Benchmark{Eq: opcount.Acoustic, Refinement: 4}
	var naive, expanded wp.Result
	for i := 0; i < b.N; i++ {
		plan, err := wp.MakePlan(bench, chip.Config2GB())
		if err != nil {
			b.Fatal(err)
		}
		var e2 error
		expanded, e2 = wp.RunPlan(plan, wp.DefaultOptions())
		if e2 != nil {
			b.Fatal(e2)
		}
		// Force the naive one-element-per-block plan on the same chip.
		plan.Tech = wp.Naive
		plan.Layout = wp.AcousticOneBlock
		plan.SlotsPerElem = 1
		naive, e2 = wp.RunPlan(plan, wp.DefaultOptions())
		if e2 != nil {
			b.Fatal(e2)
		}
	}
	b.ReportMetric(naive.StepSec/expanded.StepSec, "expansion-speedup")
}

// BenchmarkAblationInterconnectMicro measures raw schedule makespans of
// neighbor-heavy traffic on both topologies.
func BenchmarkAblationInterconnectMicro(b *testing.B) {
	var batch []intercon.Transfer
	for e := 0; e < 128; e++ {
		batch = append(batch, intercon.Transfer{Src: e, Dst: (e + 1) % 256, Words: 256})
	}
	ht := intercon.NewHTree(256, 4)
	bus := intercon.NewBus(256)
	var hm, bm float64
	for i := 0; i < b.N; i++ {
		hm = intercon.ScheduleBatch(ht, batch).Makespan
		bm = intercon.ScheduleBatch(bus, batch).Makespan
	}
	b.ReportMetric(bm/hm, "bus/htree-makespan")
}

// ---------------------------------------------------------------------------
// Substrate microbenchmarks
// ---------------------------------------------------------------------------

// BenchmarkDGReferenceStage measures one RK stage of the reference solver.
func BenchmarkDGReferenceStage(b *testing.B) {
	m := mesh.New(2, 8, true) // 64 paper-sized elements
	mat := material.Acoustic{Kappa: 2.25, Rho: 1}
	s := dg.NewAcousticSolver(m, material.UniformAcoustic(m.NumElem, mat), dg.RiemannFlux)
	q := dg.NewAcousticState(m)
	dg.PlaneWaveX(m, mat, 1, q)
	it := dg.NewAcousticIntegrator(s)
	dt := s.MaxStableDt(0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.Step(q, 0, dt)
	}
}

// BenchmarkDGElasticStage measures the elastic counterpart.
func BenchmarkDGElasticStage(b *testing.B) {
	m := mesh.New(1, 8, true)
	mat := material.Elastic{Lambda: 2, Mu: 1, Rho: 1}
	s := dg.NewElasticSolver(m, material.UniformElastic(m.NumElem, mat), dg.RiemannFlux)
	q := dg.NewElasticState(m)
	dg.PlaneWavePX(m, mat, 1, q)
	it := dg.NewElasticIntegrator(s)
	dt := s.MaxStableDt(0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.Step(q, 0, dt)
	}
}

// BenchmarkFunctionalPIMStep measures a fully functional PIM time-step
// (all data in simulated crossbar cells).
func BenchmarkFunctionalPIMStep(b *testing.B) {
	m := mesh.New(1, 4, true)
	mat := material.Acoustic{Kappa: 2.25, Rho: 1}
	fa, err := wp.NewFunctionalAcoustic(m, mat, dg.RiemannFlux, 1e-3)
	if err != nil {
		b.Fatal(err)
	}
	q := dg.NewAcousticState(m)
	dg.PlaneWaveX(m, mat, 1, q)
	fa.Load(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fa.Step()
	}
}

// BenchmarkAblationLUTOffload quantifies the Section 4.3 design choice:
// serving sqrt/inverse from look-up tables versus computing them in-array
// with gate-level Newton-Raphson.
func BenchmarkAblationLUTOffload(b *testing.B) {
	var c nor.Circuit
	for i := 0; i < b.N; i++ {
		c.RecipFP32(0x40133333) // 1/2.3
		c.SqrtFP32(0x40133333)
	}
	lutSteps := float64(2*params.BlockRowReadLatency+params.BlockRowWriteLatency) / params.TNORSeconds
	b.ReportMetric(float64(nor.RecipSteps()), "recip-NOR-steps")
	b.ReportMetric(float64(nor.SqrtSteps()), "sqrt-NOR-steps")
	b.ReportMetric(lutSteps, "lut-fetch-equivalent-steps")
}

// BenchmarkMaxwellExtension measures the electromagnetic dG stage (the
// Section 2.1 extension) and the two-block PIM mapping's program size.
func BenchmarkMaxwellExtension(b *testing.B) {
	m := mesh.New(1, 8, true)
	s := dg.NewMaxwellSolver(m, material.Vacuum, dg.RiemannFlux)
	q := dg.NewMaxwellState(m)
	dg.PlaneWaveEM(m, material.Vacuum, 1, q)
	it := dg.NewMaxwellIntegrator(s)
	dt := s.MaxStableDt(0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.Step(q, dt)
	}
	plan := wp.Plan{Tech: wp.ExpandRows, Layout: wp.ElasticFourBlock, SlotsPerElem: 4}
	comp := wp.NewCompiler(plan, 8, dg.RiemannFlux)
	b.ReportMetric(float64(len(comp.VolumeMaxwell(true))), "volume-instrs")
}

// ---------------------------------------------------------------------------
// Parallel-path benchmarks (bit-sliced substrate, worker-pool engine and
// solvers). Scalar/sliced pairs do identical work per iteration (64 fp32
// operations), so benchstat compares them directly.
// ---------------------------------------------------------------------------

// benchFP32Operands builds a reproducible 64-lane operand batch covering
// normal, subnormal and large-exponent inputs.
func benchFP32Operands() (a, b []uint32) { return benchFP32OperandsN(nor.Lanes) }

// benchFP32OperandsN is benchFP32Operands at an arbitrary batch size (the
// slab benchmarks use nor.DefaultSlabWords full slabs).
func benchFP32OperandsN(n int) (a, b []uint32) {
	a = make([]uint32, n)
	b = make([]uint32, n)
	x := uint32(0x2545F491)
	for i := range a {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		a[i] = x
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		b[i] = x
	}
	return a, b
}

// BenchmarkNORFp32MulScalar multiplies 64 lane pairs through the scalar
// gate path, one lane at a time.
func BenchmarkNORFp32MulScalar(b *testing.B) {
	av, bv := benchFP32Operands()
	var c nor.Circuit
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for l := range av {
			c.MulFP32(av[l], bv[l])
		}
	}
}

// BenchmarkNORFp32MulSliced multiplies the same 64 lane pairs in one
// bit-sliced batch (one machine op evaluates all 64 lanes of each gate).
func BenchmarkNORFp32MulSliced(b *testing.B) {
	av, bv := benchFP32Operands()
	var c nor.SlicedCircuit
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MulFP32Lanes(av, bv)
	}
}

// BenchmarkNORFp32AddScalar and BenchmarkNORFp32AddSliced are the add
// counterparts.
func BenchmarkNORFp32AddScalar(b *testing.B) {
	av, bv := benchFP32Operands()
	var c nor.Circuit
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for l := range av {
			c.AddFP32(av[l], bv[l])
		}
	}
}

func BenchmarkNORFp32AddSliced(b *testing.B) {
	av, bv := benchFP32Operands()
	var c nor.SlicedCircuit
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.AddFP32Lanes(av, bv)
	}
}

// BenchmarkNORFp32MulSlab and BenchmarkNORFp32AddSlab run the multi-slab
// substrate at its default width. One iteration processes
// DefaultSlabWords*64 operand pairs (DefaultSlabWords x the scalar/sliced
// benchmarks' 64), so the per-op speedup over the scalar bench is
// scalar_ns * DefaultSlabWords / slab_ns — the derivation
// scripts/bench_trajectory.sh performs.
func BenchmarkNORFp32MulSlab(b *testing.B) {
	av, bv := benchFP32OperandsN(nor.DefaultSlabWords * nor.Lanes)
	c := nor.NewSlabCircuit(nor.DefaultSlabWords)
	out := make([]uint32, len(av))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MulFP32Batch(av, bv, out)
	}
}

func BenchmarkNORFp32AddSlab(b *testing.B) {
	av, bv := benchFP32OperandsN(nor.DefaultSlabWords * nor.Lanes)
	c := nor.NewSlabCircuit(nor.DefaultSlabWords)
	out := make([]uint32, len(av))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.AddFP32Batch(av, bv, out)
	}
}

// BenchmarkFunctionalAcousticStep measures a fully functional PIM
// time-step with the engine's worker pool off (serial) and sized to the
// machine (parallel); the parallel path's merge keeps results identical.
func BenchmarkFunctionalAcousticStep(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		workers int
	}{
		{"serial", 0},
		{"parallel", dg.DefaultWorkers()},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			m := mesh.New(1, 4, true)
			mat := material.Acoustic{Kappa: 2.25, Rho: 1}
			fa, err := wp.NewFunctionalAcoustic(m, mat, dg.RiemannFlux, 1e-3)
			if err != nil {
				b.Fatal(err)
			}
			fa.Engine.Workers = cfg.workers
			q := dg.NewAcousticState(m)
			dg.PlaneWaveX(m, mat, 1, q)
			fa.Load(q)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fa.Step()
			}
		})
	}
}

// BenchmarkRHSParallel measures one parallel RHS evaluation of each wave
// system against its serial counterpart on the same mesh.
func BenchmarkRHSParallel(b *testing.B) {
	m := mesh.New(2, 6, true)
	workers := dg.DefaultWorkers()
	b.Run("acoustic", func(b *testing.B) {
		s := dg.NewAcousticSolver(m, material.UniformAcoustic(m.NumElem, material.Acoustic{Kappa: 2.25, Rho: 1}), dg.RiemannFlux)
		q, rhs := dg.NewAcousticState(m), dg.NewAcousticState(m)
		dg.PlaneWaveX(m, material.Acoustic{Kappa: 2.25, Rho: 1}, 1, q)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.RHSParallel(q, rhs, workers)
		}
	})
	b.Run("elastic", func(b *testing.B) {
		mat := material.Elastic{Lambda: 2, Mu: 1, Rho: 1}
		s := dg.NewElasticSolver(m, material.UniformElastic(m.NumElem, mat), dg.RiemannFlux)
		q, rhs := dg.NewElasticState(m), dg.NewElasticState(m)
		dg.PlaneWavePX(m, mat, 1, q)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.RHSParallel(q, rhs, workers)
		}
	})
	b.Run("maxwell", func(b *testing.B) {
		s := dg.NewMaxwellSolver(m, material.Vacuum, dg.RiemannFlux)
		q, rhs := dg.NewMaxwellState(m), dg.NewMaxwellState(m)
		dg.PlaneWaveEM(m, material.Vacuum, 1, q)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.RHSParallel(q, rhs, workers)
		}
	})
}

// BenchmarkRHSSerial is the serial baseline for BenchmarkRHSParallel
// (same meshes, Workers unset).
func BenchmarkRHSSerial(b *testing.B) {
	m := mesh.New(2, 6, true)
	b.Run("acoustic", func(b *testing.B) {
		s := dg.NewAcousticSolver(m, material.UniformAcoustic(m.NumElem, material.Acoustic{Kappa: 2.25, Rho: 1}), dg.RiemannFlux)
		q, rhs := dg.NewAcousticState(m), dg.NewAcousticState(m)
		dg.PlaneWaveX(m, material.Acoustic{Kappa: 2.25, Rho: 1}, 1, q)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.RHS(q, rhs)
		}
	})
	b.Run("elastic", func(b *testing.B) {
		mat := material.Elastic{Lambda: 2, Mu: 1, Rho: 1}
		s := dg.NewElasticSolver(m, material.UniformElastic(m.NumElem, mat), dg.RiemannFlux)
		q, rhs := dg.NewElasticState(m), dg.NewElasticState(m)
		dg.PlaneWavePX(m, mat, 1, q)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.RHS(q, rhs)
		}
	})
	b.Run("maxwell", func(b *testing.B) {
		s := dg.NewMaxwellSolver(m, material.Vacuum, dg.RiemannFlux)
		q, rhs := dg.NewMaxwellState(m), dg.NewMaxwellState(m)
		dg.PlaneWaveEM(m, material.Vacuum, 1, q)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.RHS(q, rhs)
		}
	})
}

// BenchmarkGPUModel measures the analytic GPU model itself.
func BenchmarkGPUModel(b *testing.B) {
	bench := opcount.Benchmark{Eq: opcount.ElasticRiemann, Refinement: 5}
	m := gpu.Model{Spec: params.TeslaV100, Impl: gpu.Fused}
	var t float64
	for i := 0; i < b.N; i++ {
		t = m.RunTime(bench, params.TimeStepsPerRun)
	}
	b.ReportMetric(t, "V100-fused-ER5-sec")
	_ = hostcpu.BaselineRunTime(bench, 1)
}
