#!/usr/bin/env bash
# topology_sweep.sh — CI guard for the interconnect topology sweep.
#
# Builds cmd/paperbench, runs the sweep (all six fabrics x all six
# evaluation benchmarks) twice on the same configuration, and requires:
#   1. the two JSON reports are byte-identical (the report is a pure
#      function of its inputs; any nondeterminism is a regression)
#   2. the report covers every topology in canonical order with every
#      benchmark present and physically sensible (positive time/energy)
#   3. the H-tree rows are the 1.00x baseline of the comparison
#
# Usage: scripts/topology_sweep.sh [chip] [steps]
#   chip   defaults to PIM-2GB (the paper's Table 3 configuration)
#   steps  defaults to 8 (the sweep's cost model is per-stage, so short
#          runs exercise the same code as the paper's 1024 steps)
#   RACE=1 builds the sweep binary with the race detector (CI smoke)
set -euo pipefail

cd "$(dirname "$0")/.."

CHIP="${1:-PIM-2GB}"
STEPS="${2:-8}"

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
if [[ -n "${RACE:-}" ]]; then
	go build -race -o "$TMP/paperbench" ./cmd/paperbench
else
	go build -o "$TMP/paperbench" ./cmd/paperbench
fi

"$TMP/paperbench" -chip "$CHIP" -steps "$STEPS" -topologysweep "$TMP/a.json" >/dev/null
"$TMP/paperbench" -chip "$CHIP" -steps "$STEPS" -topologysweep "$TMP/b.json" >/dev/null
cmp "$TMP/a.json" "$TMP/b.json"
echo "byte-deterministic: two sweeps produced identical $(wc -c <"$TMP/a.json") byte reports"

python3 - "$TMP/a.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    r = json.load(f)
topos = [t["topology"] for t in r["topologies"]]
want = ["htree", "bus", "mesh", "torus", "flatfly", "dragonfly"]
if topos != want:
    sys.exit(f"topologies {topos} != {want}")
for t in r["topologies"]:
    if len(t["benchmarks"]) != 6:
        sys.exit(f"{t['topology']}: {len(t['benchmarks'])} benchmarks, want 6")
    if t["tile_switches"] < 1:
        sys.exit(f"{t['topology']}: no switches")
    for b in t["benchmarks"]:
        if b["total_seconds"] <= 0 or b["energy_joules"] <= 0:
            sys.exit(f"{t['topology']}/{b['bench']}: non-positive time or energy")
        if t["topology"] == "htree" and abs(b["speedup_vs_htree"] - 1.0) > 1e-12:
            sys.exit(f"htree/{b['bench']}: baseline speedup {b['speedup_vs_htree']} != 1")
print(f"sweep ok: {len(topos)} topologies x {len(r['topologies'][0]['benchmarks'])} "
      f"benchmarks on {r['chip']} ({r['time_steps']} steps)")
EOF

echo "PASS"
