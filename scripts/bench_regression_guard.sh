#!/usr/bin/env bash
# bench_regression_guard.sh — fail CI when the newest committed bench
# artifact regresses any derived speedup relative to the previous one.
#
# The committed BENCH_pr*.json files form the performance trajectory: each
# PR's artifact must not lose ground on the derived speedups it shares
# with its predecessor. The comparison is between committed files (fully
# deterministic in CI — no benchmarks run here); regenerate the newest
# artifact with scripts/bench_trajectory.sh when the code legitimately
# changes performance.
#
# A derived key counts as a speedup when its name contains "_speedup";
# latency keys (*_ns) and overhead ratios are informational only. MARGIN
# (default 0.15) absorbs cross-machine noise between the environments the
# two artifacts were recorded on.
#
# Usage: scripts/bench_regression_guard.sh [margin]
set -euo pipefail

cd "$(dirname "$0")/.."

MARGIN="${1:-0.15}" python3 - <<'EOF'
import glob
import json
import os
import re
import sys

files = sorted(glob.glob("BENCH_pr*.json"),
               key=lambda f: int(re.search(r"pr(\d+)", f).group(1)))
if len(files) < 2:
    print(f"bench guard: {len(files)} artifact(s), nothing to compare")
    sys.exit(0)

prev_file, new_file = files[-2], files[-1]
prev = json.load(open(prev_file))["derived"]
new = json.load(open(new_file))["derived"]
margin = float(os.environ["MARGIN"])

shared = [k for k in prev if k in new and "_speedup" in k]
if not shared:
    sys.exit(f"bench guard: no shared *_speedup keys between {prev_file} and {new_file}")

failed = False
for k in shared:
    floor = prev[k] * (1 - margin)
    status = "ok" if new[k] >= floor else "REGRESSION"
    print(f"  {k}: {prev_file} {prev[k]} -> {new_file} {new[k]} (floor {floor:.4f}) {status}")
    if new[k] < floor:
        failed = True

if failed:
    sys.exit(f"bench guard: {new_file} regresses derived speedups vs {prev_file}")

# Informational-only derived keys (no floor): the deterministic
# topology_* cost-model ratios and anything else without "_speedup".
info = [k for k in new if "_speedup" not in k]
if info:
    print(f"  informational (no floor): {len(info)} keys")
    for k in sorted(k for k in info if k.startswith("topology_")):
        print(f"    {k}: {new[k]}")

print(f"bench guard: {new_file} holds the line vs {prev_file} ({len(shared)} speedups)")
EOF
