#!/usr/bin/env bash
# cluster_chaos_guard.sh — CI guard for the cluster's failure-path
# guarantees (DESIGN.md §14):
#
#   1. Seeded chaos determinism: the chaos suite (drop / delay / 503-flap /
#      truncate / partition schedules) runs under -race, and the golden
#      seeded schedule runs in TWO SEPARATE test processes whose final
#      /v1/jobs tables are byte-diffed — a chaos failure must be
#      reproducible from its seed alone, across processes.
#   2. Kill-and-restart journal replay, at the binary level: a real
#      wavepimctl with -journal takes jobs in every lifecycle stage, dies
#      by SIGKILL (no graceful anything), restarts on the same journal,
#      and must end with zero accepted jobs lost — finished jobs byte-
#      identical, unfinished ones re-dispatched to completion.
#
# Usage: scripts/cluster_chaos_guard.sh
set -euo pipefail

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
CTL_PID=""
WKR_PID=""
cleanup() {
	[ -n "$CTL_PID" ] && kill -9 "$CTL_PID" 2>/dev/null || true
	[ -n "$WKR_PID" ] && kill -TERM "$WKR_PID" 2>/dev/null || true
	wait 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT

echo "chaos guard [1/3]: seeded chaos suite under -race"
go test -race -count 1 -run 'TestChaosSchedulesDeterministic|TestChaosPartitionExhaustsBudget|TestJournalCrashRestartLosesNothing' \
	./internal/cluster/

echo "chaos guard [2/3]: golden schedule x 2 processes, byte-diffed job tables"
CHAOS_TABLE_OUT="$TMP/table_a.json" go test -race -count 1 -run '^TestChaosGoldenTable$' ./internal/cluster/
CHAOS_TABLE_OUT="$TMP/table_b.json" go test -race -count 1 -run '^TestChaosGoldenTable$' ./internal/cluster/
if ! cmp -s "$TMP/table_a.json" "$TMP/table_b.json"; then
	echo "chaos guard: FAILED — same seed, divergent job tables:"
	diff "$TMP/table_a.json" "$TMP/table_b.json" || true
	exit 1
fi
echo "chaos guard: tables identical ($(wc -c <"$TMP/table_a.json") bytes)"

echo "chaos guard [3/3]: kill -9 and journal-replay on the real binaries"
go build -o "$TMP/wavepimctl" ./cmd/wavepimctl
go build -o "$TMP/wavepimd" ./cmd/wavepimd

CTL_PORT=$(python3 -c 'import socket; s=socket.socket(); s.bind(("127.0.0.1",0)); print(s.getsockname()[1]); s.close()')
WKR_PORT=$(python3 -c 'import socket; s=socket.socket(); s.bind(("127.0.0.1",0)); print(s.getsockname()[1]); s.close()')
CTL="http://127.0.0.1:$CTL_PORT"
JOURNAL="$TMP/jobs.jsonl"

wait_ready() {
	for _ in $(seq 1 100); do
		if curl -sf "$CTL/v1/readyz" >/dev/null 2>&1; then return 0; fi
		sleep 0.1
	done
	echo "chaos guard: coordinator at $CTL never became ready"
	return 1
}

start_ctl() {
	"$TMP/wavepimctl" -addr "127.0.0.1:$CTL_PORT" -journal "$JOURNAL" \
		-backoff-base 10ms -backoff-cap 500ms 2>>"$TMP/ctl.log" &
	CTL_PID=$!
	wait_ready
}

start_ctl
"$TMP/wavepimd" -addr "127.0.0.1:$WKR_PORT" -workers 2 \
	-coordinator "$CTL" -name w1 -heartbeat 200ms 2>>"$TMP/wkr.log" &
WKR_PID=$!

submit() {
	local code
	code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST "$CTL/v1/jobs" \
		-H 'Content-Type: application/json' -d "$1")
	if [ "$code" != "202" ]; then
		echo "chaos guard: submit $1 -> $code"
		return 1
	fi
}

wait_done() {
	local id="$1" deadline=$((SECONDS + 60))
	while [ $SECONDS -lt $deadline ]; do
		if curl -sf "$CTL/v1/jobs/$id" | grep -q '"status":"done"'; then return 0; fi
		sleep 0.2
	done
	echo "chaos guard: job $id never finished"
	curl -s "$CTL/v1/jobs" || true
	return 1
}

# Fast jobs: finished (terminal in the journal) before the kill.
for i in 0 1 2; do
	submit "{\"equation\":\"acoustic\",\"steps\":$((2 + i)),\"id\":\"fast-$i\"}"
done
for i in 0 1 2; do wait_done "fast-$i"; done
curl -s "$CTL/v1/jobs/fast-0" >"$TMP/fast0_before.json"

# Slow jobs: accepted but queued/mid-flight when the coordinator dies.
for i in 0 1 2 3; do
	submit "{\"equation\":\"acoustic\",\"steps\":60,\"cfl\":0.3$i,\"id\":\"slow-$i\"}"
done

kill -9 "$CTL_PID"
wait "$CTL_PID" 2>/dev/null || true
CTL_PID=""

start_ctl
READY=$(curl -s "$CTL/v1/readyz")
echo "chaos guard: readyz after replay: $READY"
if ! echo "$READY" | grep -q '"journal":true'; then
	echo "chaos guard: FAILED — restarted coordinator reports no journal"
	exit 1
fi

# Zero accepted jobs lost: finished ones byte-identical, the rest finish.
for i in 0 1 2 3; do wait_done "slow-$i"; done
curl -s "$CTL/v1/jobs/fast-0" >"$TMP/fast0_after.json"
if ! cmp -s "$TMP/fast0_before.json" "$TMP/fast0_after.json"; then
	echo "chaos guard: FAILED — restored report diverges:"
	diff "$TMP/fast0_before.json" "$TMP/fast0_after.json" || true
	exit 1
fi
RECORDS=$(wc -l <"$JOURNAL")
echo "chaos guard: PASSED — 7/7 jobs survived kill -9 ($RECORDS journal records)"
