#!/usr/bin/env bash
# wavepimd_smoke.sh — CI end-to-end smoke test of the telemetry daemon.
#
# Builds cmd/wavepimd, starts it on a random loopback port, then:
#   1. checks /v1/healthz and /v1/readyz answer 200, and that the legacy
#      unversioned paths answer 308 permanent redirects into /v1
#   2. submits one small acoustic job on the canonical healing fault
#      scenario and polls it to completion
#   3. scrapes /v1/metrics and runs the exposition through a strict parser,
#      requiring the per-phase span histograms and fault-rung counters the
#      job must have produced
#
# Any non-2xx response, stuck run, or unparseable exposition fails the
# script. The daemon is torn down via SIGTERM (graceful drain) on exit.
#
# Usage: scripts/wavepimd_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=$(mktemp -d)/wavepimd
go build -o "$BIN" ./cmd/wavepimd

PORT=$(python3 -c 'import socket; s=socket.socket(); s.bind(("127.0.0.1",0)); print(s.getsockname()[1]); s.close()')
BASE="http://127.0.0.1:$PORT"

"$BIN" -addr "127.0.0.1:$PORT" -workers 1 &
DAEMON=$!
trap 'kill -TERM $DAEMON 2>/dev/null; wait $DAEMON 2>/dev/null; rm -rf "$(dirname "$BIN")"' EXIT

# fetch CODE PATH [curl args...] — GET unless args say otherwise; the body
# lands on stdout, and a status other than CODE fails the script.
fetch() {
	local want="$1" path="$2"
	shift 2
	local body code
	body=$(mktemp)
	code=$(curl -sS -o "$body" -w '%{http_code}' "$@" "$BASE$path")
	cat "$body" && rm -f "$body"
	if [ "$code" != "$want" ]; then
		echo "FAIL: $path returned $code, want $want" >&2
		exit 1
	fi
}

for i in $(seq 1 50); do
	if curl -sf "$BASE/v1/healthz" >/dev/null 2>&1; then break; fi
	if [ "$i" = 50 ]; then echo "FAIL: daemon never became healthy" >&2; exit 1; fi
	sleep 0.1
done
fetch 200 /v1/healthz >/dev/null
fetch 200 /v1/readyz >/dev/null
# The legacy unversioned surface must answer permanent redirects into /v1.
fetch 308 /healthz >/dev/null
fetch 308 /runs >/dev/null
echo "healthz/readyz ok on $BASE (legacy paths 308 into /v1)"

ID=$(fetch 202 /v1/runs -X POST \
	-d '{"equation":"acoustic","steps":4,"faults":"seed=4,flip=1e-5,stuck=1e-6"}' |
	python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
echo "submitted run $ID"

for i in $(seq 1 100); do
	STATUS=$(fetch 200 "/v1/runs/$ID" | python3 -c 'import json,sys; print(json.load(sys.stdin)["status"])')
	case "$STATUS" in
	done) break ;;
	failed) echo "FAIL: run $ID failed" >&2; exit 1 ;;
	esac
	if [ "$i" = 100 ]; then echo "FAIL: run $ID stuck in $STATUS" >&2; exit 1; fi
	sleep 0.2
done
echo "run $ID done"

METRICS=$(mktemp)
fetch 200 /v1/metrics >"$METRICS"
python3 - "$METRICS" <<'EOF'
import re
import sys

with open(sys.argv[1]) as f:
    text = f.read()
name_re = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
typed = {}
seen = set()
for line in text.rstrip("\n").splitlines():
    if line.startswith("# TYPE "):
        parts = line.split()
        if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
            sys.exit(f"bad TYPE line: {line!r}")
        if parts[2] in typed:
            sys.exit(f"duplicate TYPE for {parts[2]}")
        typed[parts[2]] = parts[3]
        continue
    if line.startswith("#"):
        continue
    m = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$", line)
    if not m:
        sys.exit(f"unparseable sample line: {line!r}")
    name, labels, value = m.groups()
    base = re.sub(r"_(total|bucket|sum|count)$", "", name)
    if name not in typed and base not in typed:
        sys.exit(f"sample {name!r} has no TYPE header")
    if value not in ("+Inf", "-Inf", "NaN"):
        float(value)
    seen.add(name + (labels or ""))

required = [
    'sim_phase_span_seconds_count{kind="blocks",phase="volume"}',
    'sim_phase_span_seconds_count{kind="blocks",phase="flux-x+"}',
    'sim_fault_rung_events_total{rung="ecc"}',
    'sim_fault_rung_events_total{rung="rollback"}',
    'sim_fault_mttr_seconds_bucket{rung="ecc",le="+Inf"}',
    'wavepimd_runs_total{status="done"}',
]
for want in required:
    if want not in seen:
        sys.exit(f"exposition missing {want}")
print(f"metrics ok: {len(seen)} samples, {len(typed)} families, "
      f"{len(required)} required series present")
EOF
rm -f "$METRICS"

echo "PASS"
