#!/usr/bin/env bash
# cluster_load_guard.sh — push JOBS (default 200) concurrent jobs through
# a 3-worker coordinator + wavepimd cluster under the race detector and
# demand zero errors. The measured throughput and latency percentiles
# come out of TestClusterLoadGuard (internal/cluster/load_test.go) as a
# fixed-field-order JSON document.
#
# Modes:
#   scripts/cluster_load_guard.sh            run the guard (CI: -race, 0 errors)
#   RECORD=1 scripts/cluster_load_guard.sh   also fold the result into the
#                                            newest BENCH_pr*.json as its
#                                            "cluster" section
#
# Env: JOBS (default 200) — must stay >= 200 for the committed guarantee.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-200}"
RESULT=$(mktemp)
LOG=$(mktemp)
trap 'rm -f "$RESULT" "$LOG"' EXIT

echo "cluster load guard: $JOBS concurrent jobs, 3 workers, -race"
if ! CLUSTER_LOAD=1 CLUSTER_LOAD_JOBS="$JOBS" CLUSTER_LOAD_OUT="$RESULT" \
	go test -race -run '^TestClusterLoadGuard$' -count 1 -v ./internal/cluster/ >"$LOG" 2>&1; then
	cat "$LOG"
	echo "cluster load guard: FAILED"
	exit 1
fi
grep -E 'cluster load:' "$LOG" || true

RESULT="$RESULT" JOBS="$JOBS" RECORD="${RECORD:-}" python3 - <<'EOF'
import glob
import json
import os
import re
import sys

res = json.load(open(os.environ["RESULT"]))
jobs = int(os.environ["JOBS"])

if res["errors"] != 0:
    sys.exit(f"cluster load guard: {res['errors']} errors")
if res["jobs"] < jobs:
    sys.exit(f"cluster load guard: only {res['jobs']} of {jobs} jobs completed")
if res["jobs"] < 200:
    sys.exit(f"cluster load guard: {res['jobs']} jobs is below the 200-job guarantee")
print(f"cluster load guard: {res['jobs']} jobs, 0 errors, "
      f"{res['throughput_jobs_per_sec']:.1f} jobs/s, p99 {res['p99_ms']:.1f}ms")

if os.environ["RECORD"]:
    files = sorted(glob.glob("BENCH_pr*.json"),
                   key=lambda f: int(re.search(r"pr(\d+)", f).group(1)))
    if not files:
        sys.exit("cluster load guard: RECORD=1 but no BENCH_pr*.json exists "
                 "(run scripts/bench_trajectory.sh first)")
    target = files[-1]
    doc = json.load(open(target))
    doc["cluster"] = res  # loadResult's fixed field order carries through
    with open(target, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"cluster load guard: recorded into {target}")
EOF
