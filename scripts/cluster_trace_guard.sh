#!/usr/bin/env bash
# cluster_trace_guard.sh — CI guard for the distributed-tracing pipeline
# (DESIGN.md §15):
#
#   1. In-process determinism under -race: the golden merged-trace test
#      (two fixed-clock cluster stacks, byte-identical /v1/jobs/{id}/trace)
#      and the chaos-seeded trace test (retry/backoff spans with typed
#      annotations, nested inside the root job span, no host leakage).
#   2. The real binaries: a wavepimctl + 3 wavepimd cluster takes
#      mixed-priority jobs; every merged trace must be a well-formed
#      Chrome trace document — both processes present, every span with
#      non-negative duration, every coordinator span nested inside the
#      root job span — and /v1/metrics must expose the four stage-latency
#      histogram families plus the per-priority queue gauges.
#   3. Cross-run stability: a second seeded run's merged trace, with the
#      wall-clock ts/dur fields stripped, is byte-identical to the first
#      — span identity, names, nesting, and annotations are a pure
#      function of the job, never of timing. (Byte-identity WITH
#      timestamps is proven by the fixed-clock test in step 1; real
#      binaries read a real clock.)
#
# Usage: scripts/cluster_trace_guard.sh
set -euo pipefail

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
PIDS=()
cleanup() {
	for p in "${PIDS[@]:-}"; do kill -TERM "$p" 2>/dev/null || true; done
	wait 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT

echo "trace guard [1/3]: golden + chaos trace tests under -race"
go test -race -count 1 -run 'TestClusterGoldenMergedTrace|TestChaosTraceSpans' \
	./internal/cluster/

echo "trace guard [2/3]: merged traces and metrics on the real binaries"
go build -o "$TMP/wavepimctl" ./cmd/wavepimctl
go build -o "$TMP/wavepimd" ./cmd/wavepimd

port() {
	python3 -c 'import socket; s=socket.socket(); s.bind(("127.0.0.1",0)); print(s.getsockname()[1]); s.close()'
}

# run_cluster <tag>: boots a fresh coordinator + 3 workers, submits the
# fixed mixed-priority job set, waits for every job, then saves each
# job's merged trace as $TMP/<tag>_<id>.json and the metrics page as
# $TMP/<tag>_metrics.txt.
run_cluster() {
	local tag="$1" ctl_port ctl pids=()
	ctl_port=$(port)
	ctl="http://127.0.0.1:$ctl_port"
	"$TMP/wavepimctl" -addr "127.0.0.1:$ctl_port" -seed 42 \
		-eventlog "$TMP/${tag}_events.jsonl" \
		-backoff-base 10ms -backoff-cap 200ms 2>>"$TMP/${tag}_ctl.log" &
	pids+=($!)
	PIDS+=($!)
	for _ in $(seq 1 100); do
		curl -sf "$ctl/v1/readyz" >/dev/null 2>&1 && break
		sleep 0.1
	done
	for w in 1 2 3; do
		"$TMP/wavepimd" -addr "127.0.0.1:$(port)" -workers 2 \
			-coordinator "$ctl" -name "w$w" -heartbeat 200ms 2>>"$TMP/${tag}_w$w.log" &
		pids+=($!)
		PIDS+=($!)
	done
	# Submit only once all three workers are members: a job dispatched into
	# an empty ring records wall-timing-dependent no-owner stall cycles,
	# which step 3's structural diff would flag as divergence.
	for _ in $(seq 1 100); do
		[ "$(curl -sf "$ctl/v1/workers" | grep -o '"id"' | wc -l)" = "3" ] && break
		sleep 0.1
	done

	local jobs="trace-high-0:high trace-norm-0:normal trace-norm-1:normal trace-low-0:low"
	local steps=3
	for j in $jobs; do
		local id="${j%%:*}" prio="${j##*:}" code
		code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST "$ctl/v1/jobs" \
			-H 'Content-Type: application/json' \
			-d "{\"equation\":\"acoustic\",\"steps\":$steps,\"priority\":\"$prio\",\"id\":\"$id\"}")
		steps=$((steps + 1))
		if [ "$code" != "202" ]; then
			echo "trace guard: submit $id -> $code"
			return 1
		fi
	done
	for j in $jobs; do
		local id="${j%%:*}" deadline=$((SECONDS + 60))
		while :; do
			curl -sf "$ctl/v1/jobs/$id" | grep -q '"status":"done"' && break
			if [ $SECONDS -ge $deadline ]; then
				echo "trace guard: job $id never finished"
				curl -s "$ctl/v1/jobs" || true
				return 1
			fi
			sleep 0.2
		done
		curl -sf "$ctl/v1/jobs/$id/trace" >"$TMP/${tag}_${id}.json"
	done
	curl -sf "$ctl/v1/metrics" >"$TMP/${tag}_metrics.txt"

	for p in "${pids[@]}"; do kill -TERM "$p" 2>/dev/null || true; done
	wait "${pids[@]}" 2>/dev/null || true
}

run_cluster a

for f in "$TMP"/a_trace-*.json; do
	python3 - "$f" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
evs = doc["traceEvents"]
assert evs, "empty traceEvents"
names = {e.get("args", {}).get("name") for e in evs if e.get("ph") == "M"}
assert "wavepimctl" in names, f"coordinator process missing: {names}"
assert any(n.startswith("wavepimd:") for n in names), f"worker process missing: {names}"
spans = [e for e in evs if e.get("ph") == "X"]
stages = {e["name"].split("#")[0] for e in spans if e["pid"] == 1}
for want in ("job", "admission", "queue", "dispatch", "exec", "report"):
    assert want in stages, f"stage {want} missing from {stages}"
root = [e for e in spans if e["pid"] == 1 and e["name"] == "job"]
assert len(root) == 1, f"{len(root)} root spans"
lo, hi = root[0]["ts"], root[0]["ts"] + root[0]["dur"]
for e in spans:
    assert e["dur"] >= 0, f"negative duration: {e}"
    if e["pid"] == 1:  # worker spans live on their own process clock
        assert lo <= e["ts"] and e["ts"] + e["dur"] <= hi + 1, f"span escapes root: {e}"
print(f"  {sys.argv[1].rsplit('/',1)[-1]}: {len(spans)} spans, ok")
EOF
done

for fam in wavepimctl_job_queue_seconds wavepimctl_dispatch_seconds \
	wavepimctl_exec_seconds wavepimctl_e2e_seconds; do
	if ! grep -q "# TYPE $fam histogram" "$TMP/a_metrics.txt"; then
		echo "trace guard: FAILED — metrics missing histogram family $fam"
		exit 1
	fi
done
for g in 'wavepimctl_queue_depth{priority="high"}' 'wavepimctl_queue_age_seconds{priority="low"}'; do
	if ! grep -qF "$g" "$TMP/a_metrics.txt"; then
		echo "trace guard: FAILED — metrics missing gauge $g"
		exit 1
	fi
done
echo "trace guard: metrics expose the latency decomposition"

echo "trace guard [3/3]: second seeded run, timing-stripped trace diff"
run_cluster b

strip() {
	python3 -c '
import json, re, sys
doc = json.load(open(sys.argv[1]))
for e in doc["traceEvents"]:
    e.pop("ts", None)
    e.pop("dur", None)
json.dump(doc, sys.stdout, indent=1, sort_keys=True)
' "$1"
}
for f in "$TMP"/a_trace-*.json; do
	id=$(basename "$f")
	id=${id#a_}
	strip "$f" >"$TMP/strip_a.json"
	strip "$TMP/b_$id" >"$TMP/strip_b.json"
	if ! cmp -s "$TMP/strip_a.json" "$TMP/strip_b.json"; then
		echo "trace guard: FAILED — $id structure diverges across seeded runs:"
		diff "$TMP/strip_a.json" "$TMP/strip_b.json" | head -40 || true
		exit 1
	fi
done
echo "trace guard: PASSED — traces well-formed, nested, and structurally stable"
