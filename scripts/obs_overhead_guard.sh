#!/usr/bin/env bash
# obs_overhead_guard.sh — CI gate for the observability layer's nil-sink
# guarantee: the instrumented hot-path hooks, with no sink attached, must
# cost no more than MAX_RATIO of the fully uninstrumented loop.
#
# Runs the BenchmarkNilSinkOverhead pair (internal/obs) COUNT times and
# compares the *minimum* ns/op of each side — minima are the least noisy
# statistic on shared CI runners.
#
# Usage: scripts/obs_overhead_guard.sh [count]
set -euo pipefail

cd "$(dirname "$0")/.."

COUNT="${1:-6}"
MAX_RATIO="${MAX_RATIO:-1.02}"

OUT=$(go test -run '^$' -bench 'BenchmarkNilSinkOverhead' -count "$COUNT" \
	-benchtime 1000000x ./internal/obs/)
echo "$OUT"

BENCH_OUT="$OUT" python3 - "$MAX_RATIO" <<'EOF'
import os
import sys

max_ratio = float(sys.argv[1])
mins = {}
for line in os.environ["BENCH_OUT"].splitlines():
    parts = line.split()
    if len(parts) >= 4 and parts[0].startswith("BenchmarkNilSinkOverhead/"):
        name = parts[0].split("/")[1].split("-")[0]
        ns = float(parts[2])
        mins[name] = min(ns, mins.get(name, float("inf")))

missing = {"baseline", "nilsink"} - mins.keys()
if missing:
    sys.exit(f"benchmark output missing {sorted(missing)}")

ratio = mins["nilsink"] / mins["baseline"]
print(f"nil-sink overhead: baseline {mins['baseline']:.1f} ns/op, "
      f"nilsink {mins['nilsink']:.1f} ns/op, ratio {ratio:.4f} "
      f"(limit {max_ratio})")
if ratio > max_ratio:
    sys.exit("FAIL: nil-sink instrumentation overhead exceeds the limit")
print("PASS")
EOF
