#!/usr/bin/env bash
# fault_determinism_guard.sh — CI gate for seeded fault reproducibility:
# the same seeded stuck+flip functional scenario, run twice, must produce
# byte-identical fault reports (counters, remaps, engine totals, and the
# timeline digest hashing every phase's exact float bit patterns).
#
# This is the property everything else leans on: fault decisions are pure
# hashes of (seed, block, cell, write epoch), so neither goroutine
# scheduling nor map iteration order may leak into a result.
#
# Usage: scripts/fault_determinism_guard.sh [fault-spec]
set -euo pipefail

cd "$(dirname "$0")/.."

SPEC="${1:-seed=7,flip=1e-5,stuck=1e-6}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/wavepim" ./cmd/wavepim

run() {
	"$TMP/wavepim" -functional -refine 1 -np 4 -fsteps 4 \
		-faults "$SPEC" -faultreport "$1"
}

echo "== run 1 =="
run "$TMP/report1.json"
echo "== run 2 =="
run "$TMP/report2.json"

if ! diff -u "$TMP/report1.json" "$TMP/report2.json"; then
	echo "FAIL: seeded fault runs are not byte-reproducible" >&2
	exit 1
fi
echo "PASS: fault reports byte-identical across runs ($SPEC)"
