#!/usr/bin/env bash
# bench_trajectory.sh — record the performance trajectory of the hot-path
# work into a committed JSON artifact (BENCH_pr8.json):
#
#   * nil-sink instrumentation overhead (BenchmarkNilSinkOverhead pair)
#   * scalar vs bit-sliced vs multi-slab NOR fp32 arithmetic (Mul and Add)
#   * serial vs adaptive-parallel dG RHS evaluation (acoustic/elastic/maxwell)
#   * cold vs warm (plan-cache hit) Session construction
#   * per-topology interconnect cost (paperbench -topologysweep), folded
#     into derived as topology_*_time_ratio / topology_*_energy_ratio —
#     these are model outputs, not machine measurements, so their names
#     deliberately avoid the guard's "_speedup" floor matching
#
# Each benchmark runs COUNT times and the *minimum* ns/op is kept — minima
# are the least noisy statistic on shared runners. The JSON field order is
# fixed (schema first, then benchmarks sorted as listed below, then derived
# ratios) so diffs between regenerations stay readable.
#
# Usage: scripts/bench_trajectory.sh [count]   (writes $OUT, default BENCH_pr8.json)
set -euo pipefail

cd "$(dirname "$0")/.."

COUNT="${1:-3}"
OUT="${OUT:-BENCH_pr8.json}"

SWEEP=$(mktemp)
trap 'rm -f "$SWEEP"' EXIT
go run ./cmd/paperbench -chip PIM-2GB -steps "${SWEEP_STEPS:-8}" -topologysweep "$SWEEP" >/dev/null

NIL=$(go test -run '^$' -bench '^BenchmarkNilSinkOverhead$' -count "$COUNT" \
	-benchtime 1000000x ./internal/obs/)
echo "$NIL"
NOR=$(go test -run '^$' -bench '^BenchmarkNORFp32(Mul|Add)(Scalar|Sliced|Slab)$' \
	-count "$COUNT" .)
echo "$NOR"
# The serial/parallel RHS pairs are compared against each other, so they
# are measured interleaved (one count per invocation, COUNT invocations):
# with -count N the harness runs each benchmark N times consecutively,
# and minutes of clock drift between the batches would swamp the few-
# percent differences the derived ratios track.
RHS=""
for _ in $(seq "$COUNT"); do
	RHS+=$(go test -run '^$' -bench '^BenchmarkRHS(Serial|Parallel)$' -count 1 .)
	RHS+=$'\n'
done
echo "$RHS"
PLAN=$(go test -run '^$' -bench '^BenchmarkSessionBuild(Cold|Warm)$' -count "$COUNT" \
	./internal/wavepim/)
echo "$PLAN"

BENCH_OUT="$NIL
$NOR
$RHS
$PLAN" OUT="$OUT" COUNT="$COUNT" SWEEP="$SWEEP" python3 - <<'EOF'
import json
import os
import sys

# Fixed benchmark order for the artifact; regenerations diff cleanly.
ORDER = [
    "NilSinkOverhead/baseline",
    "NilSinkOverhead/nilsink",
    "NORFp32MulScalar",
    "NORFp32MulSliced",
    "NORFp32MulSlab",
    "NORFp32AddScalar",
    "NORFp32AddSliced",
    "NORFp32AddSlab",
    "RHSSerial/acoustic",
    "RHSParallel/acoustic",
    "RHSSerial/elastic",
    "RHSParallel/elastic",
    "RHSSerial/maxwell",
    "RHSParallel/maxwell",
    "SessionBuildCold",
    "SessionBuildWarm",
]

# One slab iteration processes SLAB_WORDS x 64 operand pairs; the scalar
# and sliced benchmarks process 64. Keep in sync with nor.DefaultSlabWords.
SLAB_WORDS = 8

mins = {}
for line in os.environ["BENCH_OUT"].splitlines():
    parts = line.split()
    if len(parts) >= 4 and parts[0].startswith("Benchmark") and parts[3] == "ns/op":
        # BenchmarkRHSSerial/acoustic-8 -> RHSSerial/acoustic
        name = parts[0][len("Benchmark"):].rsplit("-", 1)[0]
        ns = float(parts[2])
        mins[name] = min(ns, mins.get(name, float("inf")))

missing = [n for n in ORDER if n not in mins]
if missing:
    sys.exit(f"benchmark output missing {missing}")

ratio = lambda a, b: round(mins[a] / mins[b], 4)
slab_ratio = lambda a, b: round(mins[a] * SLAB_WORDS / mins[b], 4)
doc = {
    "schema": "wavepim-bench-trajectory/2",
    "count": int(os.environ["COUNT"]),
    "benchmarks": [{"name": n, "ns_per_op": mins[n]} for n in ORDER],
    "derived": {
        "nil_sink_overhead_ratio": ratio("NilSinkOverhead/nilsink", "NilSinkOverhead/baseline"),
        "nor_mul_sliced_speedup": ratio("NORFp32MulScalar", "NORFp32MulSliced"),
        "nor_add_sliced_speedup": ratio("NORFp32AddScalar", "NORFp32AddSliced"),
        "nor_mul_slab_speedup": slab_ratio("NORFp32MulScalar", "NORFp32MulSlab"),
        "nor_add_slab_speedup": slab_ratio("NORFp32AddScalar", "NORFp32AddSlab"),
        "rhs_parallel_speedup_acoustic": ratio("RHSSerial/acoustic", "RHSParallel/acoustic"),
        "rhs_parallel_speedup_elastic": ratio("RHSSerial/elastic", "RHSParallel/elastic"),
        "rhs_parallel_speedup_maxwell": ratio("RHSSerial/maxwell", "RHSParallel/maxwell"),
        "plan_cache_warm_speedup": ratio("SessionBuildCold", "SessionBuildWarm"),
        "plan_cache_hit_ns": mins["SessionBuildWarm"],
    },
}

# Fold the interconnect sweep in: per topology, the geometric-mean time
# and energy ratio vs the H-tree baseline across the six paper
# benchmarks. These come out of the deterministic cost model (identical
# on every machine), so they are informational — the key names carry no
# "_speedup" and the regression guard never floors them.
sweep = json.load(open(os.environ["SWEEP"]))
base = {b["bench"]: b for b in sweep["topologies"][0]["benchmarks"]}
for topo in sweep["topologies"]:
    t_prod = e_prod = 1.0
    for b in topo["benchmarks"]:
        t_prod *= b["total_seconds"] / base[b["bench"]]["total_seconds"]
        e_prod *= b["energy_joules"] / base[b["bench"]]["energy_joules"]
    n = len(topo["benchmarks"])
    doc["derived"][f"topology_{topo['topology']}_time_ratio"] = round(t_prod ** (1 / n), 4)
    doc["derived"][f"topology_{topo['topology']}_energy_ratio"] = round(e_prod ** (1 / n), 4)
out = os.environ["OUT"]
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}")
for k, v in doc["derived"].items():
    print(f"  {k}: {v}")
EOF
