#!/usr/bin/env bash
# bench_trajectory.sh — record the performance trajectory the observability
# PR cares about into a committed JSON artifact (BENCH_pr5.json):
#
#   * nil-sink instrumentation overhead (BenchmarkNilSinkOverhead pair)
#   * scalar vs bit-sliced NOR fp32 arithmetic (Mul and Add)
#   * serial vs parallel dG RHS evaluation (acoustic/elastic/maxwell)
#
# Each benchmark runs COUNT times and the *minimum* ns/op is kept — minima
# are the least noisy statistic on shared runners. The JSON field order is
# fixed (schema first, then benchmarks sorted as listed below, then derived
# ratios) so diffs between regenerations stay readable.
#
# Usage: scripts/bench_trajectory.sh [count]   (writes $OUT, default BENCH_pr5.json)
set -euo pipefail

cd "$(dirname "$0")/.."

COUNT="${1:-3}"
OUT="${OUT:-BENCH_pr5.json}"

NIL=$(go test -run '^$' -bench '^BenchmarkNilSinkOverhead$' -count "$COUNT" \
	-benchtime 1000000x ./internal/obs/)
echo "$NIL"
NOR=$(go test -run '^$' -bench '^BenchmarkNORFp32(Mul|Add)(Scalar|Sliced)$' \
	-count "$COUNT" .)
echo "$NOR"
RHS=$(go test -run '^$' -bench '^BenchmarkRHS(Serial|Parallel)$' -count "$COUNT" .)
echo "$RHS"

BENCH_OUT="$NIL
$NOR
$RHS" OUT="$OUT" COUNT="$COUNT" python3 - <<'EOF'
import json
import os
import sys

# Fixed benchmark order for the artifact; regenerations diff cleanly.
ORDER = [
    "NilSinkOverhead/baseline",
    "NilSinkOverhead/nilsink",
    "NORFp32MulScalar",
    "NORFp32MulSliced",
    "NORFp32AddScalar",
    "NORFp32AddSliced",
    "RHSSerial/acoustic",
    "RHSParallel/acoustic",
    "RHSSerial/elastic",
    "RHSParallel/elastic",
    "RHSSerial/maxwell",
    "RHSParallel/maxwell",
]

mins = {}
for line in os.environ["BENCH_OUT"].splitlines():
    parts = line.split()
    if len(parts) >= 4 and parts[0].startswith("Benchmark") and parts[3] == "ns/op":
        # BenchmarkRHSSerial/acoustic-8 -> RHSSerial/acoustic
        name = parts[0][len("Benchmark"):].rsplit("-", 1)[0]
        ns = float(parts[2])
        mins[name] = min(ns, mins.get(name, float("inf")))

missing = [n for n in ORDER if n not in mins]
if missing:
    sys.exit(f"benchmark output missing {missing}")

ratio = lambda a, b: round(mins[a] / mins[b], 4)
doc = {
    "schema": "wavepim-bench-trajectory/1",
    "count": int(os.environ["COUNT"]),
    "benchmarks": [{"name": n, "ns_per_op": mins[n]} for n in ORDER],
    "derived": {
        "nil_sink_overhead_ratio": ratio("NilSinkOverhead/nilsink", "NilSinkOverhead/baseline"),
        "nor_mul_sliced_speedup": ratio("NORFp32MulScalar", "NORFp32MulSliced"),
        "nor_add_sliced_speedup": ratio("NORFp32AddScalar", "NORFp32AddSliced"),
        "rhs_parallel_speedup_acoustic": ratio("RHSSerial/acoustic", "RHSParallel/acoustic"),
        "rhs_parallel_speedup_elastic": ratio("RHSSerial/elastic", "RHSParallel/elastic"),
        "rhs_parallel_speedup_maxwell": ratio("RHSSerial/maxwell", "RHSParallel/maxwell"),
    },
}
out = os.environ["OUT"]
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}")
for k, v in doc["derived"].items():
    print(f"  {k}: {v}")
EOF
